#ifndef SPATE_SQL_EXPLAIN_H_
#define SPATE_SQL_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "sql/planner.h"

namespace spate {

/// Renders a plan as the stable EXPLAIN text tree (golden-tested —
/// tests/sql/golden/): the shaping nodes the statement implies stacked over
/// the scan node, whose detail lines carry the planner's evidence (window,
/// column/cell restriction, leaf counts, predicted decode bytes). Node
/// names come from `kPlanNodeNames`.
std::string RenderPlan(const QueryPlan& plan);

/// What `EXPLAIN SELECT ...` produces: the rendered tree plus — because
/// SPATE's EXPLAIN also *runs* the statement — the execution's result and
/// the predicted-vs-actual decode footer.
struct ExplainResult {
  /// Rendered tree + footer (`predicted/actual bytes decoded`).
  std::string text;
  QueryPlan plan;
  /// The statement's result (EXPLAIN executes to measure actual cost).
  SqlResult result;
  uint64_t actual_bytes_decoded = 0;
};

/// Plans and executes `sql` (with or without a leading EXPLAIN keyword),
/// returning the rendered plan, the result and both cost numbers.
Result<ExplainResult> ExplainSql(Framework& framework, std::string_view sql,
                                 ResultCache* cache = nullptr);

/// Plans and executes an already-parsed statement (prepared-statement
/// path).
Result<ExplainResult> ExplainSelect(Framework& framework,
                                    const SelectStatement& statement,
                                    ResultCache* cache = nullptr);

}  // namespace spate

#endif  // SPATE_SQL_EXPLAIN_H_
