#include "sql/executor.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>

#include "sql/parser.h"
#include "telco/schema.h"

namespace spate {
namespace {

/// Expands a compact timestamp prefix literal to its period [lo, hi).
/// Returns false if the literal is not a valid compact timestamp.
bool TsPeriod(const std::string& literal, Timestamp* lo, Timestamp* hi) {
  *lo = ParseCompact(literal);
  if (*lo < 0) return false;
  CivilTime ct = ToCivil(*lo);
  // Bump the finest specified field; FromCivil's arithmetic absorbs any
  // overflow (day 32, hour 24, month 13 all roll forward correctly).
  switch (literal.size()) {
    case 4:
      ct.year += 1;
      break;
    case 6:
      ct.month += 1;
      break;
    case 8:
      ct.day += 1;
      break;
    case 10:
      ct.hour += 1;
      break;
    default:
      ct.minute += 1;
      break;
  }
  *hi = FromCivil(ct);
  return true;
}

struct Accumulator {
  uint64_t count = 0;
  std::set<std::string> distinct_values;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::string min_text, max_text;
  bool numeric = true;

  void Add(const std::string& value) {
    ++count;
    double v = 0;
    if (ParseDouble(value, &v)) {
      sum += v;
      if (v < min) {
        min = v;
        min_text = value;
      }
      if (v > max) {
        max = v;
        max_text = value;
      }
    } else {
      numeric = false;
      if (min_text.empty() || value < min_text) min_text = value;
      if (max_text.empty() || value > max_text) max_text = value;
    }
  }
};

std::string FormatDouble(double v) {
  char buf[32];
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

/// Evaluates one non-ts predicate against a field value.
bool EvalPredicate(const std::string& field, const Predicate& pred) {
  double fv = 0, lv = 0;
  int cmp;
  if (ParseDouble(field, &fv) && ParseDouble(pred.literal, &lv)) {
    cmp = fv < lv ? -1 : (fv > lv ? 1 : 0);
  } else {
    cmp = field.compare(pred.literal);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (pred.op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

/// Evaluates a ts predicate with prefix-period semantics.
bool EvalTsPredicate(Timestamp ts, const Predicate& pred, Timestamp lo,
                     Timestamp hi) {
  switch (pred.op) {
    case CompareOp::kEq:
      return ts >= lo && ts < hi;
    case CompareOp::kNe:
      return ts < lo || ts >= hi;
    case CompareOp::kLt:
      return ts < lo;
    case CompareOp::kLe:
      return ts < hi;
    case CompareOp::kGt:
      return ts >= hi;
    case CompareOp::kGe:
      return ts >= lo;
  }
  return false;
}

const TableSchema* SchemaFor(const std::string& table) {
  if (table == "CDR") return &CdrSchema();
  if (table == "NMS") return &NmsSchema();
  if (table == "CELL") return &CellSchema();
  return nullptr;
}

/// A column resolved against the (fact, optional dimension) pair.
struct ColumnBinding {
  int source = 0;  // 0 = fact table, 1 = joined dimension
  int index = -1;
};

/// Resolves a possibly-qualified column name ("cell_id", "CELL.region").
Result<ColumnBinding> Resolve(const std::string& name,
                              const std::string& fact_table,
                              const TableSchema& fact,
                              const TableSchema* dim) {
  const size_t dot = name.find('.');
  if (dot != std::string::npos) {
    std::string table = name.substr(0, dot);
    for (char& c : table) {
      c = static_cast<char>(toupper(static_cast<unsigned char>(c)));
    }
    const std::string column = name.substr(dot + 1);
    if (table == fact_table) {
      const int idx = fact.IndexOf(column);
      if (idx < 0) return Status::InvalidArgument("sql: unknown column " + name);
      return ColumnBinding{0, idx};
    }
    if (dim != nullptr && table == dim->name()) {
      const int idx = dim->IndexOf(column);
      if (idx < 0) return Status::InvalidArgument("sql: unknown column " + name);
      return ColumnBinding{1, idx};
    }
    return Status::InvalidArgument("sql: unknown table qualifier " + name);
  }
  const int fact_idx = fact.IndexOf(name);
  const int dim_idx = dim != nullptr ? dim->IndexOf(name) : -1;
  if (fact_idx >= 0 && dim_idx >= 0) {
    return Status::InvalidArgument("sql: ambiguous column " + name +
                                   " (qualify with a table name)");
  }
  if (fact_idx >= 0) return ColumnBinding{0, fact_idx};
  if (dim_idx >= 0) return ColumnBinding{1, dim_idx};
  return Status::InvalidArgument("sql: unknown column " + name);
}

}  // namespace

std::string SelectItem::DisplayName() const {
  switch (aggregate) {
    case AggregateFn::kNone:
      return column;
    case AggregateFn::kCount:
      return distinct ? "COUNT(DISTINCT " + column + ")"
                      : "COUNT(" + column + ")";
    case AggregateFn::kSum:
      return "SUM(" + column + ")";
    case AggregateFn::kAvg:
      return "AVG(" + column + ")";
    case AggregateFn::kMin:
      return "MIN(" + column + ")";
    case AggregateFn::kMax:
      return "MAX(" + column + ")";
  }
  return column;
}

Result<SqlResult> ExecuteSql(Framework& framework,
                             const SelectStatement& statement) {
  const TableSchema* fact = SchemaFor(statement.table);
  if (fact == nullptr) {
    return Status::InvalidArgument("sql: unknown table " + statement.table);
  }
  // Dimension join (CELL only — the static star-schema dimension).
  const TableSchema* dim = nullptr;
  ColumnBinding join_left, join_right;
  if (statement.join.has_value()) {
    if (statement.join->table != "CELL") {
      return Status::NotSupported("sql: only JOIN CELL is supported");
    }
    if (statement.table == "CELL") {
      return Status::NotSupported("sql: CELL cannot join itself");
    }
    dim = &CellSchema();
    SPATE_ASSIGN_OR_RETURN(
        join_left,
        Resolve(statement.join->left_column, statement.table, *fact, dim));
    SPATE_ASSIGN_OR_RETURN(
        join_right,
        Resolve(statement.join->right_column, statement.table, *fact, dim));
    // Normalize: left on the fact side, right on the dimension side.
    if (join_left.source == 1 && join_right.source == 0) {
      std::swap(join_left, join_right);
    }
    if (join_left.source != 0 || join_right.source != 1) {
      return Status::InvalidArgument(
          "sql: join condition must relate the fact table to CELL");
    }
  }

  // Expand '*' and validate columns.
  struct Item {
    SelectItem item;
    ColumnBinding binding;  // invalid for COUNT(*)
  };
  std::vector<Item> items;
  bool has_aggregate = false;
  for (const SelectItem& item : statement.items) {
    if (item.aggregate == AggregateFn::kNone && item.column == "*") {
      for (const AttributeSpec& attr : fact->attributes()) {
        items.push_back(
            Item{SelectItem{AggregateFn::kNone, false, attr.name},
                 ColumnBinding{0, fact->IndexOf(attr.name)}});
      }
      if (dim != nullptr) {
        for (const AttributeSpec& attr : dim->attributes()) {
          items.push_back(
              Item{SelectItem{AggregateFn::kNone, false, attr.name},
                   ColumnBinding{1, dim->IndexOf(attr.name)}});
        }
      }
      continue;
    }
    Item entry;
    entry.item = item;
    if (!(item.aggregate == AggregateFn::kCount && item.column == "*")) {
      SPATE_ASSIGN_OR_RETURN(
          entry.binding, Resolve(item.column, statement.table, *fact, dim));
    }
    has_aggregate |= (item.aggregate != AggregateFn::kNone);
    items.push_back(std::move(entry));
  }
  if (items.empty()) {
    return Status::InvalidArgument("sql: empty select list");
  }
  ColumnBinding group_binding;
  bool has_group = false;
  if (statement.group_by.has_value()) {
    SPATE_ASSIGN_OR_RETURN(
        group_binding,
        Resolve(*statement.group_by, statement.table, *fact, dim));
    has_group = true;
    has_aggregate = true;
  }

  // Validate predicates; extract the temporal window from fact-ts
  // predicates.
  const int ts_col = fact->IndexOf("ts");
  Timestamp window_begin = 0;
  Timestamp window_end = std::numeric_limits<Timestamp>::max();
  struct TsBound {
    const Predicate* pred;
    Timestamp lo, hi;
  };
  std::vector<TsBound> ts_preds;
  struct BoundPred {
    const Predicate* pred;
    ColumnBinding binding;
  };
  std::vector<BoundPred> other_preds;
  for (const Predicate& pred : statement.where) {
    SPATE_ASSIGN_OR_RETURN(
        ColumnBinding binding,
        Resolve(pred.column, statement.table, *fact, dim));
    if (binding.source == 0 && binding.index == ts_col && ts_col >= 0) {
      Timestamp lo, hi;
      if (!TsPeriod(pred.literal, &lo, &hi)) {
        return Status::InvalidArgument("sql: bad ts literal " + pred.literal);
      }
      ts_preds.push_back(TsBound{&pred, lo, hi});
      switch (pred.op) {
        case CompareOp::kEq:
          window_begin = std::max(window_begin, lo);
          window_end = std::min(window_end, hi);
          break;
        case CompareOp::kGe:
          window_begin = std::max(window_begin, lo);
          break;
        case CompareOp::kGt:
          window_begin = std::max(window_begin, hi);
          break;
        case CompareOp::kLe:
          window_end = std::min(window_end, hi);
          break;
        case CompareOp::kLt:
          window_end = std::min(window_end, lo);
          break;
        case CompareOp::kNe:
          break;
      }
    } else {
      other_preds.push_back(BoundPred{&pred, binding});
    }
  }

  // Dimension hash table for the join.
  std::unordered_map<std::string, const Record*> dim_by_key;
  if (dim != nullptr) {
    for (const Record& row : framework.cell_rows()) {
      dim_by_key.emplace(FieldAsString(row, join_right.index), &row);
    }
  }

  SqlResult result;
  for (const Item& entry : items) {
    result.columns.push_back(entry.item.DisplayName());
  }

  auto field = [&](const Record& fact_row, const Record* dim_row,
                   const ColumnBinding& binding) -> const std::string& {
    if (binding.source == 0) return FieldAsString(fact_row, binding.index);
    static const std::string& empty = *new std::string();
    return dim_row != nullptr ? FieldAsString(*dim_row, binding.index)
                              : empty;
  };

  // Aggregation state: group key -> (representative key text, accumulators).
  std::map<std::string, std::vector<Accumulator>> groups;
  auto consume = [&](const Record& fact_row) {
    // Join (inner): resolve the dimension row first.
    const Record* dim_row = nullptr;
    if (dim != nullptr) {
      auto it = dim_by_key.find(FieldAsString(fact_row, join_left.index));
      if (it == dim_by_key.end()) return;
      dim_row = it->second;
    }
    // Predicates.
    if (ts_col >= 0 && !ts_preds.empty()) {
      const Timestamp ts = ParseCompact(FieldAsString(fact_row, ts_col));
      for (const TsBound& b : ts_preds) {
        if (!EvalTsPredicate(ts, *b.pred, b.lo, b.hi)) return;
      }
    }
    for (const BoundPred& bp : other_preds) {
      if (!EvalPredicate(field(fact_row, dim_row, bp.binding), *bp.pred)) {
        return;
      }
    }
    if (!has_aggregate) {
      std::vector<std::string> out;
      out.reserve(items.size());
      for (const Item& entry : items) {
        out.push_back(field(fact_row, dim_row, entry.binding));
      }
      result.rows.push_back(std::move(out));
      return;
    }
    const std::string key =
        has_group ? field(fact_row, dim_row, group_binding) : "";
    auto [it, inserted] =
        groups.try_emplace(key, std::vector<Accumulator>(items.size()));
    std::vector<Accumulator>& accs = it->second;
    for (size_t i = 0; i < items.size(); ++i) {
      const Item& entry = items[i];
      if (entry.item.aggregate == AggregateFn::kCount &&
          entry.item.column == "*") {
        ++accs[i].count;
      } else if (entry.item.aggregate == AggregateFn::kCount &&
                 entry.item.distinct) {
        accs[i].distinct_values.insert(field(fact_row, dim_row, entry.binding));
      } else {
        accs[i].Add(field(fact_row, dim_row, entry.binding));
      }
    }
  };

  if (statement.table == "CELL") {
    for (const Record& row : framework.cell_rows()) consume(row);
  } else if (window_begin < window_end) {
    const bool is_cdr = statement.table == "CDR";
    SPATE_RETURN_IF_ERROR(framework.ScanWindow(
        window_begin, window_end, [&](const Snapshot& snapshot) {
          const std::vector<Record>& rows =
              is_cdr ? snapshot.cdr : snapshot.nms;
          for (const Record& row : rows) consume(row);
        }));
  }

  if (has_aggregate) {
    for (const auto& [key, accs] : groups) {
      std::vector<std::string> out;
      out.reserve(items.size());
      for (size_t i = 0; i < items.size(); ++i) {
        const SelectItem& item = items[i].item;
        const Accumulator& acc = accs[i];
        switch (item.aggregate) {
          case AggregateFn::kNone:
            // Plain column next to aggregates: the group key (or first
            // seen value for non-grouped columns).
            out.push_back(has_group && item.column == *statement.group_by
                              ? key
                              : acc.min_text);
            break;
          case AggregateFn::kCount:
            out.push_back(std::to_string(item.distinct
                                             ? acc.distinct_values.size()
                                             : acc.count));
            break;
          case AggregateFn::kSum:
            out.push_back(FormatDouble(acc.sum));
            break;
          case AggregateFn::kAvg:
            out.push_back(
                FormatDouble(acc.count ? acc.sum / acc.count : 0.0));
            break;
          case AggregateFn::kMin:
            out.push_back(acc.numeric && acc.count ? FormatDouble(acc.min)
                                                   : acc.min_text);
            break;
          case AggregateFn::kMax:
            out.push_back(acc.numeric && acc.count ? FormatDouble(acc.max)
                                                   : acc.max_text);
            break;
        }
      }
      result.rows.push_back(std::move(out));
    }
  }

  // ORDER BY: match the operand against output display names.
  if (statement.order_by.has_value()) {
    const auto& order = *statement.order_by;
    int column = -1;
    for (size_t i = 0; i < result.columns.size(); ++i) {
      if (result.columns[i] == order.column) {
        column = static_cast<int>(i);
        break;
      }
    }
    if (column < 0) {
      return Status::InvalidArgument("sql: ORDER BY column " + order.column +
                                     " is not in the select list");
    }
    const bool desc = order.descending;
    std::stable_sort(
        result.rows.begin(), result.rows.end(),
        [column, desc](const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
          double av = 0, bv = 0;
          int cmp;
          if (ParseDouble(a[column], &av) && ParseDouble(b[column], &bv)) {
            cmp = av < bv ? -1 : (av > bv ? 1 : 0);
          } else {
            const int c = a[column].compare(b[column]);
            cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
          }
          return desc ? cmp > 0 : cmp < 0;
        });
  }

  if (statement.limit.has_value() && result.rows.size() > *statement.limit) {
    result.rows.resize(*statement.limit);
  }
  return result;
}

Result<SqlResult> ExecuteSql(Framework& framework, std::string_view sql) {
  SPATE_ASSIGN_OR_RETURN(SelectStatement statement, ParseSql(sql));
  return ExecuteSql(framework, statement);
}

}  // namespace spate
