#include "sql/executor.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/clock.h"
#include "common/strings.h"
#include "sql/parser.h"
#include "telco/schema.h"

namespace spate {
namespace {

/// Expands a compact timestamp prefix literal to its period [lo, hi).
/// Returns false if the literal is not a valid compact timestamp.
bool TsPeriod(const std::string& literal, Timestamp* lo, Timestamp* hi) {
  *lo = ParseCompact(literal);
  if (*lo < 0) return false;
  CivilTime ct = ToCivil(*lo);
  // Bump the finest specified field; FromCivil's arithmetic absorbs any
  // overflow (day 32, hour 24, month 13 all roll forward correctly).
  switch (literal.size()) {
    case 4:
      ct.year += 1;
      break;
    case 6:
      ct.month += 1;
      break;
    case 8:
      ct.day += 1;
      break;
    case 10:
      ct.hour += 1;
      break;
    default:
      ct.minute += 1;
      break;
  }
  *hi = FromCivil(ct);
  return true;
}

std::string FormatDouble(double v) {
  char buf[32];
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

/// Evaluates one non-ts predicate against a field value.
bool EvalPredicate(const std::string& field, const Predicate& pred) {
  double fv = 0, lv = 0;
  int cmp;
  if (ParseDouble(field, &fv) && ParseDouble(pred.literal, &lv)) {
    cmp = fv < lv ? -1 : (fv > lv ? 1 : 0);
  } else {
    cmp = field.compare(pred.literal);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (pred.op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

/// Evaluates a ts predicate with prefix-period semantics.
bool EvalTsPredicate(Timestamp ts, const Predicate& pred, Timestamp lo,
                     Timestamp hi) {
  switch (pred.op) {
    case CompareOp::kEq:
      return ts >= lo && ts < hi;
    case CompareOp::kNe:
      return ts < lo || ts >= hi;
    case CompareOp::kLt:
      return ts < lo;
    case CompareOp::kLe:
      return ts < hi;
    case CompareOp::kGt:
      return ts >= hi;
    case CompareOp::kGe:
      return ts >= lo;
  }
  return false;
}

const TableSchema* SchemaFor(const std::string& table) {
  if (table == "CDR") return &CdrSchema();
  if (table == "NMS") return &NmsSchema();
  if (table == "CELL") return &CellSchema();
  return nullptr;
}

/// Maps a fact column to the node-summary metric the highlights module
/// materializes for it (index/highlights.cc AddSnapshot). `integral` says
/// the metric is fed through FieldAsInt — its sums are exact in a double at
/// any merge order, so SUM/AVG from summaries is bit-identical to the row
/// path; the two double metrics (throughput, rssi) support only the
/// order-independent MIN/MAX.
bool MetricFor(bool cdr_table, int column, Metric* metric, bool* integral) {
  *integral = true;
  if (cdr_table) {
    switch (column) {
      case kCdrDuration:
        *metric = Metric::kDuration;
        return true;
      case kCdrUpflux:
        *metric = Metric::kUpflux;
        return true;
      case kCdrDownflux:
        *metric = Metric::kDownflux;
        return true;
      default:
        return false;
    }
  }
  switch (column) {
    case kNmsDropCalls:
      *metric = Metric::kDropCalls;
      return true;
    case kNmsCallAttempts:
      *metric = Metric::kCallAttempts;
      return true;
    case kNmsHandoverFails:
      *metric = Metric::kHandoverFails;
      return true;
    case kNmsThroughput:
      *metric = Metric::kThroughput;
      *integral = false;
      return true;
    case kNmsRssi:
      *metric = Metric::kRssi;
      *integral = false;
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string SelectItem::DisplayName() const {
  switch (aggregate) {
    case AggregateFn::kNone:
      return column;
    case AggregateFn::kCount:
      return distinct ? "COUNT(DISTINCT " + column + ")"
                      : "COUNT(" + column + ")";
    case AggregateFn::kSum:
      return "SUM(" + column + ")";
    case AggregateFn::kAvg:
      return "AVG(" + column + ")";
    case AggregateFn::kMin:
      return "MIN(" + column + ")";
    case AggregateFn::kMax:
      return "MAX(" + column + ")";
  }
  return column;
}

void SqlEvaluation::Accumulator::Add(const std::string& value) {
  ++count;
  double v = 0;
  if (ParseDouble(value, &v)) {
    sum += v;
    if (v < min) {
      min = v;
      min_text = value;
    }
    if (v > max) {
      max = v;
      max_text = value;
    }
  } else {
    numeric = false;
    if (min_text.empty() || value < min_text) min_text = value;
    if (max_text.empty() || value > max_text) max_text = value;
  }
}

Status SqlEvaluation::Resolve(const std::string& name,
                              ColumnBinding* binding) const {
  const size_t dot = name.find('.');
  if (dot != std::string::npos) {
    std::string table = name.substr(0, dot);
    for (char& c : table) {
      c = static_cast<char>(toupper(static_cast<unsigned char>(c)));
    }
    const std::string column = name.substr(dot + 1);
    if (table == statement_->table) {
      const int idx = fact_->IndexOf(column);
      if (idx < 0) return Status::InvalidArgument("sql: unknown column " + name);
      *binding = ColumnBinding{0, idx};
      return Status::OK();
    }
    if (dim_ != nullptr && table == dim_->name()) {
      const int idx = dim_->IndexOf(column);
      if (idx < 0) return Status::InvalidArgument("sql: unknown column " + name);
      *binding = ColumnBinding{1, idx};
      return Status::OK();
    }
    return Status::InvalidArgument("sql: unknown table qualifier " + name);
  }
  const int fact_idx = fact_->IndexOf(name);
  const int dim_idx = dim_ != nullptr ? dim_->IndexOf(name) : -1;
  if (fact_idx >= 0 && dim_idx >= 0) {
    return Status::InvalidArgument("sql: ambiguous column " + name +
                                   " (qualify with a table name)");
  }
  if (fact_idx >= 0) {
    *binding = ColumnBinding{0, fact_idx};
    return Status::OK();
  }
  if (dim_idx >= 0) {
    *binding = ColumnBinding{1, dim_idx};
    return Status::OK();
  }
  return Status::InvalidArgument("sql: unknown column " + name);
}

Result<SqlEvaluation> SqlEvaluation::Prepare(
    const SelectStatement& statement, const std::vector<Record>& cell_rows) {
  SqlEvaluation eval;
  eval.statement_ = &statement;
  eval.fact_ = SchemaFor(statement.table);
  if (eval.fact_ == nullptr) {
    return Status::InvalidArgument("sql: unknown table " + statement.table);
  }
  eval.from_cell_ = statement.table == "CELL";
  eval.is_cdr_ = statement.table == "CDR";

  for (const Predicate& pred : statement.where) {
    if (pred.param >= 0) {
      return Status::InvalidArgument(
          "sql: unbound parameter ?" + std::to_string(pred.param + 1) +
          " (bind prepared-statement parameters before executing)");
    }
  }

  // Dimension join (CELL only — the static star-schema dimension).
  if (statement.join.has_value()) {
    if (statement.join->table != "CELL") {
      return Status::NotSupported("sql: only JOIN CELL is supported");
    }
    if (statement.table == "CELL") {
      return Status::NotSupported("sql: CELL cannot join itself");
    }
    eval.dim_ = &CellSchema();
    SPATE_RETURN_IF_ERROR(
        eval.Resolve(statement.join->left_column, &eval.join_left_));
    SPATE_RETURN_IF_ERROR(
        eval.Resolve(statement.join->right_column, &eval.join_right_));
    // Normalize: left on the fact side, right on the dimension side.
    if (eval.join_left_.source == 1 && eval.join_right_.source == 0) {
      std::swap(eval.join_left_, eval.join_right_);
    }
    if (eval.join_left_.source != 0 || eval.join_right_.source != 1) {
      return Status::InvalidArgument(
          "sql: join condition must relate the fact table to CELL");
    }
  }

  // Expand '*' and validate columns.
  for (const SelectItem& item : statement.items) {
    if (item.aggregate == AggregateFn::kNone && item.column == "*") {
      for (const AttributeSpec& attr : eval.fact_->attributes()) {
        eval.items_.push_back(
            Item{SelectItem{AggregateFn::kNone, false, attr.name},
                 ColumnBinding{0, eval.fact_->IndexOf(attr.name)}});
      }
      if (eval.dim_ != nullptr) {
        for (const AttributeSpec& attr : eval.dim_->attributes()) {
          eval.items_.push_back(
              Item{SelectItem{AggregateFn::kNone, false, attr.name},
                   ColumnBinding{1, eval.dim_->IndexOf(attr.name)}});
        }
      }
      eval.all_fact_columns_ = true;
      continue;
    }
    Item entry;
    entry.item = item;
    if (!(item.aggregate == AggregateFn::kCount && item.column == "*")) {
      SPATE_RETURN_IF_ERROR(eval.Resolve(item.column, &entry.binding));
    }
    eval.has_aggregate_ |= (item.aggregate != AggregateFn::kNone);
    eval.items_.push_back(std::move(entry));
  }
  if (eval.items_.empty()) {
    return Status::InvalidArgument("sql: empty select list");
  }
  if (statement.group_by.has_value()) {
    SPATE_RETURN_IF_ERROR(
        eval.Resolve(*statement.group_by, &eval.group_binding_));
    eval.has_group_ = true;
    eval.has_aggregate_ = true;
  }

  // Validate predicates; extract the temporal window from fact-ts
  // predicates.
  eval.ts_col_ = eval.fact_->IndexOf("ts");
  eval.cell_col_ = eval.fact_->IndexOf("cell_id");
  for (const Predicate& pred : statement.where) {
    ColumnBinding binding;
    SPATE_RETURN_IF_ERROR(eval.Resolve(pred.column, &binding));
    if (binding.source == 0 && binding.index == eval.ts_col_ &&
        eval.ts_col_ >= 0) {
      Timestamp lo, hi;
      if (!TsPeriod(pred.literal, &lo, &hi)) {
        return Status::InvalidArgument("sql: bad ts literal " + pred.literal);
      }
      eval.ts_preds_.push_back(TsBound{&pred, lo, hi});
      switch (pred.op) {
        case CompareOp::kEq:
          eval.window_begin_ = std::max(eval.window_begin_, lo);
          eval.window_end_ = std::min(eval.window_end_, hi);
          break;
        case CompareOp::kGe:
          eval.window_begin_ = std::max(eval.window_begin_, lo);
          break;
        case CompareOp::kGt:
          eval.window_begin_ = std::max(eval.window_begin_, hi);
          break;
        case CompareOp::kLe:
          eval.window_end_ = std::min(eval.window_end_, hi);
          break;
        case CompareOp::kLt:
          eval.window_end_ = std::min(eval.window_end_, lo);
          break;
        case CompareOp::kNe:
          break;
      }
    } else {
      eval.other_preds_.push_back(BoundPred{&pred, binding});
    }
  }

  // Dimension hash table for the join.
  if (eval.dim_ != nullptr) {
    for (const Record& row : cell_rows) {
      eval.dim_by_key_.emplace(FieldAsString(row, eval.join_right_.index),
                               &row);
    }
  }

  for (const Item& entry : eval.items_) {
    eval.result_.columns.push_back(entry.item.DisplayName());
  }

  eval.AnalyzeForPlanner();
  return eval;
}

void SqlEvaluation::AnalyzeForPlanner() {
  // Joined statements probe the dimension with full-width rows and plain
  // '*' selects need every column; everything else reads a known set.
  all_fact_columns_ |= dim_ != nullptr;
  if (!all_fact_columns_) {
    auto add = [&](const ColumnBinding& binding) {
      if (binding.source != 0 || binding.index < 0) return;
      const auto& attrs = fact_->attributes();
      if (static_cast<size_t>(binding.index) < attrs.size()) {
        fact_columns_.push_back(attrs[static_cast<size_t>(binding.index)].name);
      }
    };
    for (const Item& entry : items_) add(entry.binding);
    for (const BoundPred& bp : other_preds_) add(bp.binding);
    if (has_group_) add(group_binding_);
    // ts and cell id always ride along: the scan-side projection forces
    // them anyway (ScanProjection) and re-filtering cached rows needs them.
    for (int forced : {ts_col_, cell_col_}) add(ColumnBinding{0, forced});
    std::sort(fact_columns_.begin(), fact_columns_.end());
    fact_columns_.erase(
        std::unique(fact_columns_.begin(), fact_columns_.end()),
        fact_columns_.end());
  }

  // Spatial pushdown: exactly one distinct literal pinned by fact
  // `cell_id =` equalities. (Two distinct literals are NOT a contradiction
  // — '01' and '1' compare equal numerically — so pushdown just declines.)
  if (cell_col_ >= 0) {
    bool multiple = false;
    for (const BoundPred& bp : other_preds_) {
      if (bp.binding.source != 0 || bp.binding.index != cell_col_ ||
          bp.pred->op != CompareOp::kEq) {
        continue;
      }
      if (pushdown_cell_.empty()) {
        pushdown_cell_ = bp.pred->literal;
      } else if (pushdown_cell_ != bp.pred->literal) {
        multiple = true;
      }
    }
    if (multiple) pushdown_cell_.clear();
  }

  // Summary answering: the statement's answer is derivable bit-identically
  // from NodeSummary aggregates. Requirements (each tied to an exactness
  // argument — see docs/SQL.md "Planner decision table"):
  //   - fact table, no join (summaries know nothing of dimension columns);
  //   - aggregates only, each mapping onto a materialized metric; SUM/AVG
  //     restricted to integer-fed metrics (exact in a double at any merge
  //     order), MIN/MAX allowed on any metric (order-independent);
  //     COUNT(DISTINCT) excluded;
  //   - plain select item only as the GROUP BY key echo;
  //   - grouping absent or by the fact cell-id column (the summaries' key);
  //   - residual predicates only on the fact cell-id column — evaluated
  //     per summary key with the same EvalPredicate the row path uses;
  //   - no `ts !=` predicate, and the window epoch-aligned, so the window's
  //     leaves contain exactly the predicate-satisfying rows.
  // The planner additionally checks the window is fully resolved (decayed
  // leaves are in the summaries but not in a row scan).
  summary_eligible_ = !from_cell_ && dim_ == nullptr && has_aggregate_;
  if (summary_eligible_) {
    for (const TsBound& b : ts_preds_) {
      if (b.pred->op == CompareOp::kNe) summary_eligible_ = false;
    }
    if (window_begin_ % kEpochSeconds != 0) summary_eligible_ = false;
    if (window_end_ != std::numeric_limits<Timestamp>::max() &&
        window_end_ % kEpochSeconds != 0) {
      summary_eligible_ = false;
    }
    for (const BoundPred& bp : other_preds_) {
      if (bp.binding.source != 0 || bp.binding.index != cell_col_ ||
          cell_col_ < 0) {
        summary_eligible_ = false;
      }
    }
    if (has_group_ && (group_binding_.source != 0 ||
                       group_binding_.index != cell_col_ || cell_col_ < 0)) {
      summary_eligible_ = false;
    }
  }
  if (summary_eligible_) {
    for (const Item& entry : items_) {
      SummaryItem out;
      Metric metric = Metric::kDropCalls;
      bool integral = false;
      switch (entry.item.aggregate) {
        case AggregateFn::kNone:
          if (!(has_group_ && statement_->group_by.has_value() &&
                entry.item.column == *statement_->group_by)) {
            summary_eligible_ = false;
          }
          out.source = SummarySource::kGroupKey;
          break;
        case AggregateFn::kCount:
          // COUNT(*) and COUNT(col) both count consumed rows (Add always
          // increments); COUNT(DISTINCT) is not derivable.
          if (entry.item.distinct) summary_eligible_ = false;
          out.source = SummarySource::kRowCount;
          break;
        case AggregateFn::kSum:
        case AggregateFn::kAvg:
          if (entry.binding.source != 0 ||
              !MetricFor(is_cdr_, entry.binding.index, &metric, &integral) ||
              !integral) {
            summary_eligible_ = false;
          }
          out.source = SummarySource::kMetric;
          out.fn = entry.item.aggregate;
          out.metric = metric;
          break;
        case AggregateFn::kMin:
        case AggregateFn::kMax:
          if (entry.binding.source != 0 ||
              !MetricFor(is_cdr_, entry.binding.index, &metric, &integral)) {
            summary_eligible_ = false;
          }
          out.source = SummarySource::kMetric;
          out.fn = entry.item.aggregate;
          out.metric = metric;
          break;
      }
      summary_items_.push_back(out);
    }
  }
  if (!summary_eligible_) summary_items_.clear();
}

const std::string& SqlEvaluation::Field(const Record& fact_row,
                                        const Record* dim_row,
                                        const ColumnBinding& binding) const {
  if (binding.source == 0) return FieldAsString(fact_row, binding.index);
  static const std::string& empty = *new std::string();
  return dim_row != nullptr ? FieldAsString(*dim_row, binding.index) : empty;
}

void SqlEvaluation::ConsumeRow(const Record& fact_row) {
  // Join (inner): resolve the dimension row first.
  const Record* dim_row = nullptr;
  if (dim_ != nullptr) {
    auto it = dim_by_key_.find(FieldAsString(fact_row, join_left_.index));
    if (it == dim_by_key_.end()) return;
    dim_row = it->second;
  }
  // Predicates.
  if (ts_col_ >= 0 && !ts_preds_.empty()) {
    const Timestamp ts = ParseCompact(FieldAsString(fact_row, ts_col_));
    for (const TsBound& b : ts_preds_) {
      if (!EvalTsPredicate(ts, *b.pred, b.lo, b.hi)) return;
    }
  }
  for (const BoundPred& bp : other_preds_) {
    if (!EvalPredicate(Field(fact_row, dim_row, bp.binding), *bp.pred)) {
      return;
    }
  }
  if (!has_aggregate_) {
    std::vector<std::string> out;
    out.reserve(items_.size());
    for (const Item& entry : items_) {
      out.push_back(Field(fact_row, dim_row, entry.binding));
    }
    result_.rows.push_back(std::move(out));
    return;
  }
  const std::string key =
      has_group_ ? Field(fact_row, dim_row, group_binding_) : "";
  auto [it, inserted] =
      groups_.try_emplace(key, std::vector<Accumulator>(items_.size()));
  std::vector<Accumulator>& accs = it->second;
  for (size_t i = 0; i < items_.size(); ++i) {
    const Item& entry = items_[i];
    if (entry.item.aggregate == AggregateFn::kCount &&
        entry.item.column == "*") {
      ++accs[i].count;
    } else if (entry.item.aggregate == AggregateFn::kCount &&
               entry.item.distinct) {
      accs[i].distinct_values.insert(Field(fact_row, dim_row, entry.binding));
    } else {
      accs[i].Add(Field(fact_row, dim_row, entry.binding));
    }
  }
}

void SqlEvaluation::ConsumeSnapshot(const Snapshot& snapshot) {
  const std::vector<Record>& rows = is_cdr_ ? snapshot.cdr : snapshot.nms;
  for (const Record& row : rows) ConsumeRow(row);
}

Status SqlEvaluation::ShapeResult(SqlResult* result) const {
  // ORDER BY: match the operand against output display names.
  if (statement_->order_by.has_value()) {
    const auto& order = *statement_->order_by;
    int column = -1;
    for (size_t i = 0; i < result->columns.size(); ++i) {
      if (result->columns[i] == order.column) {
        column = static_cast<int>(i);
        break;
      }
    }
    if (column < 0) {
      return Status::InvalidArgument("sql: ORDER BY column " + order.column +
                                     " is not in the select list");
    }
    const bool desc = order.descending;
    std::stable_sort(
        result->rows.begin(), result->rows.end(),
        [column, desc](const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
          double av = 0, bv = 0;
          int cmp;
          if (ParseDouble(a[column], &av) && ParseDouble(b[column], &bv)) {
            cmp = av < bv ? -1 : (av > bv ? 1 : 0);
          } else {
            const int c = a[column].compare(b[column]);
            cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
          }
          return desc ? cmp > 0 : cmp < 0;
        });
  }
  if (statement_->limit.has_value() &&
      result->rows.size() > *statement_->limit) {
    result->rows.resize(*statement_->limit);
  }
  return Status::OK();
}

Result<SqlResult> SqlEvaluation::Finish() {
  if (has_aggregate_) {
    for (const auto& [key, accs] : groups_) {
      std::vector<std::string> out;
      out.reserve(items_.size());
      for (size_t i = 0; i < items_.size(); ++i) {
        const SelectItem& item = items_[i].item;
        const Accumulator& acc = accs[i];
        switch (item.aggregate) {
          case AggregateFn::kNone:
            // Plain column next to aggregates: the group key (or first
            // seen value for non-grouped columns).
            out.push_back(has_group_ && item.column == *statement_->group_by
                              ? key
                              : acc.min_text);
            break;
          case AggregateFn::kCount:
            out.push_back(std::to_string(item.distinct
                                             ? acc.distinct_values.size()
                                             : acc.count));
            break;
          case AggregateFn::kSum:
            out.push_back(FormatDouble(acc.sum));
            break;
          case AggregateFn::kAvg:
            out.push_back(
                FormatDouble(acc.count ? acc.sum / acc.count : 0.0));
            break;
          case AggregateFn::kMin:
            out.push_back(acc.numeric && acc.count ? FormatDouble(acc.min)
                                                   : acc.min_text);
            break;
          case AggregateFn::kMax:
            out.push_back(acc.numeric && acc.count ? FormatDouble(acc.max)
                                                   : acc.max_text);
            break;
        }
      }
      result_.rows.push_back(std::move(out));
    }
  }
  SPATE_RETURN_IF_ERROR(ShapeResult(&result_));
  return std::move(result_);
}

Result<SqlResult> SqlEvaluation::AnswerFromSummary(
    const NodeSummary& summary) const {
  if (!summary_eligible_) {
    return Status::Internal("sql: statement is not summary-answerable");
  }
  SqlResult out;
  out.columns = result_.columns;

  auto cell_passes = [&](const std::string& cell_id) {
    for (const BoundPred& bp : other_preds_) {
      if (!EvalPredicate(cell_id, *bp.pred)) return false;
    }
    return true;
  };
  auto emit = [&](const std::string& key, uint64_t row_count,
                  const CellStats& stats) {
    std::vector<std::string> row;
    row.reserve(summary_items_.size());
    for (const SummaryItem& item : summary_items_) {
      switch (item.source) {
        case SummarySource::kGroupKey:
          row.push_back(key);
          break;
        case SummarySource::kRowCount:
          row.push_back(std::to_string(row_count));
          break;
        case SummarySource::kMetric: {
          const MetricAggregate& m =
              stats.metrics[static_cast<int>(item.metric)];
          switch (item.fn) {
            case AggregateFn::kSum:
              row.push_back(FormatDouble(m.sum));
              break;
            case AggregateFn::kAvg:
              row.push_back(FormatDouble(m.count ? m.sum / m.count : 0.0));
              break;
            case AggregateFn::kMin:
              row.push_back(FormatDouble(m.min));
              break;
            case AggregateFn::kMax:
              row.push_back(FormatDouble(m.max));
              break;
            default:
              row.push_back("");
              break;
          }
          break;
        }
      }
    }
    out.rows.push_back(std::move(row));
  };

  // per_cell() is a sorted map, matching the row path's sorted group map;
  // without GROUP BY the row path would have one "" group iff any row
  // matched.
  if (has_group_) {
    for (const auto& [cell_id, stats] : summary.per_cell()) {
      const uint64_t row_count = is_cdr_ ? stats.cdr_rows : stats.nms_rows;
      if (row_count == 0 || !cell_passes(cell_id)) continue;
      emit(cell_id, row_count, stats);
    }
  } else {
    uint64_t total = 0;
    CellStats merged;
    for (const auto& [cell_id, stats] : summary.per_cell()) {
      const uint64_t row_count = is_cdr_ ? stats.cdr_rows : stats.nms_rows;
      if (row_count == 0 || !cell_passes(cell_id)) continue;
      total += row_count;
      merged.Merge(stats);
    }
    if (total > 0) emit("", total, merged);
  }

  SPATE_RETURN_IF_ERROR(ShapeResult(&out));
  return out;
}

Result<SqlResult> ExecuteSql(Framework& framework,
                             const SelectStatement& statement) {
  SPATE_ASSIGN_OR_RETURN(
      SqlEvaluation eval,
      SqlEvaluation::Prepare(statement, framework.cell_rows()));
  if (eval.from_cell()) {
    for (const Record& row : framework.cell_rows()) eval.ConsumeRow(row);
  } else if (eval.window_begin() < eval.window_end()) {
    SPATE_RETURN_IF_ERROR(framework.ScanWindow(
        eval.window_begin(), eval.window_end(),
        [&eval](const Snapshot& snapshot) { eval.ConsumeSnapshot(snapshot); }));
  }
  return eval.Finish();
}

Result<SqlResult> ExecuteSql(Framework& framework, std::string_view sql) {
  SPATE_ASSIGN_OR_RETURN(SelectStatement statement, ParseSql(sql));
  return ExecuteSql(framework, statement);
}

}  // namespace spate
