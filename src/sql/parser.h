#ifndef SPATE_SQL_PARSER_H_
#define SPATE_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace spate {

/// Parses one SPATE-SQL statement (the grammar docs/SQL.md documents):
///
///   [EXPLAIN] SELECT <item> [, <item>...]
///   FROM <CDR|NMS|CELL>
///   [JOIN CELL ON <col> = <col>]
///   [WHERE <col> <op> (<literal> | ?) [AND ...]]
///   [GROUP BY <col>]
///   [ORDER BY <item> [ASC|DESC]]
///   [LIMIT <n>]  [;]
///
/// where <item> is `*`, a column, or COUNT(*) / COUNT(DISTINCT col) /
/// SUM(col) / AVG(col) / MIN(col) / MAX(col); <op> is = != <> < <= > >=;
/// literals are numbers or quoted strings ('...' or "..."); `?` marks a
/// prepared-statement placeholder bound positionally at execution time
/// (`BindParams`, sql/planner.h). Keywords are case-insensitive.
/// Returns InvalidArgument with a position-bearing message on bad input.
Result<SelectStatement> ParseSql(std::string_view sql);

}  // namespace spate

#endif  // SPATE_SQL_PARSER_H_
