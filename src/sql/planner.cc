#include "sql/planner.h"

#include <optional>
#include <unordered_set>
#include <utility>

#include "sql/parser.h"
#include "telco/schema.h"

namespace spate {
namespace {

/// Plaintext bytes a columnar decode spends on one table's chunks under
/// `projection` (mirrors DecodeColumnarLeaf: skipped tables cost nothing,
/// selected chunks decode whole regardless of row restriction).
uint64_t ColumnarTableBytes(const std::vector<uint64_t>& column_bytes,
                            const TableProjection& projection) {
  uint64_t total = 0;
  for (size_t c = 0; c < column_bytes.size(); ++c) {
    if (projection.Keeps(static_cast<int>(c))) total += column_bytes[c];
  }
  return total;
}

/// Mirror of the scan's LeafIntersectsCells on the planner-visible summary
/// (planner leaves are never decayed — LeavesInWindow filters them out).
bool SummaryIntersectsCells(const NodeSummary& summary,
                            const std::unordered_set<std::string>& wanted) {
  for (const auto& [cell_id, stats] : summary.per_cell()) {
    if (wanted.count(cell_id) != 0) return true;
  }
  return false;
}

TableProjection SkipTable() {
  TableProjection projection;
  projection.all = false;
  projection.skip = true;
  return projection;
}

/// The unprojected full-window query a `kRowScan` caches its rows under
/// (and the planner's second cache-probe candidate).
ExplorationQuery RowQueryFor(const ExplorationQuery& lowered) {
  ExplorationQuery query;
  query.window_begin = lowered.window_begin;
  query.window_end = lowered.window_end;
  return query;
}

/// Appends the snapshot's in-window rows to `out` — the `QueryResult` a
/// direct `Execute(query)` of the lowered query would produce (the scan
/// already applied projection, mask and cell restriction; only the window
/// filter remains, since scans stream whole leaves).
void CollectRows(const Snapshot& snapshot, const ExplorationQuery& query,
                 QueryResult* out) {
  const auto in_window = [&query](const Record& row) {
    const Timestamp ts = ParseCompact(FieldAsString(row, 0));
    return ts >= query.window_begin && ts < query.window_end;
  };
  if (query.want_cdr) {
    for (const Record& row : snapshot.cdr) {
      if (in_window(row)) out->cdr_rows.push_back(row);
    }
  }
  if (query.want_nms) {
    for (const Record& row : snapshot.nms) {
      if (in_window(row)) out->nms_rows.push_back(row);
    }
  }
}

/// Runs the scan leg shared by `kProjectedScan`, `kRowScan` and the raced
/// `kCacheServe` fallback: streams rows into `eval`, reports actual decoded
/// bytes, and feeds the cache when the scan completed without skips.
Result<SqlResult> RunScan(Framework& framework, const ExplorationQuery& query,
                          SqlEvaluation& eval, ResultCache* cache,
                          uint64_t* actual_bytes_decoded, bool projected) {
  QueryResult collected;
  const bool collect = cache != nullptr;
  const auto consume = [&](const Snapshot& snapshot) {
    eval.ConsumeSnapshot(snapshot);
    if (collect) CollectRows(snapshot, query, &collected);
  };
  if (projected) {
    SPATE_RETURN_IF_ERROR(framework.ScanWindowProjected(query, consume));
  } else {
    SPATE_RETURN_IF_ERROR(
        framework.ScanWindow(query.window_begin, query.window_end, consume));
  }
  const ScanStats& stats = framework.last_scan_stats();
  if (actual_bytes_decoded != nullptr) {
    *actual_bytes_decoded = stats.bytes_decoded;
  }
  // Only complete scans are cacheable — an entry must stand for the whole
  // window, not for whichever replicas happened to be readable.
  if (collect && stats.complete()) {
    collected.exact = true;
    cache->Insert(query, collected, stats.bytes_decoded);
  }
  return eval.Finish();
}

}  // namespace

ExplorationQuery LowerToExploration(const SqlEvaluation& eval,
                                    const CellDirectory& cells,
                                    std::string* cell_restrict) {
  if (cell_restrict != nullptr) cell_restrict->clear();
  ExplorationQuery lowered;
  if (!eval.references_all_fact_columns()) {
    lowered.attributes = eval.fact_columns();
  }
  lowered.window_begin = eval.window_begin();
  lowered.window_end = eval.window_end();
  lowered.want_cdr = eval.is_cdr();
  lowered.want_nms = !eval.is_cdr();
  if (!eval.pushdown_cell().empty()) {
    const CellInfo* info = cells.Find(eval.pushdown_cell());
    if (info != nullptr) {
      lowered.box = BoundingBox{info->x, info->y, info->x, info->y};
      lowered.has_box = true;
      if (cell_restrict != nullptr) *cell_restrict = eval.pushdown_cell();
    }
  }
  return lowered;
}

const char* PlanScanKindName(PlanScanKind kind) {
  switch (kind) {
    case PlanScanKind::kCellScan:
      return "CellScan";
    case PlanScanKind::kEmptyScan:
      return "EmptyScan";
    case PlanScanKind::kSummaryAnswer:
      return "SummaryAnswer";
    case PlanScanKind::kCacheServe:
      return "CacheServe";
    case PlanScanKind::kProjectedScan:
      return "ProjectedScan";
    case PlanScanKind::kRowScan:
      return "RowScan";
  }
  return "RowScan";
}

Result<QueryPlan> PlanSelect(Framework& framework,
                             const SelectStatement& statement,
                             ResultCache* cache) {
  SPATE_ASSIGN_OR_RETURN(
      SqlEvaluation eval,
      SqlEvaluation::Prepare(statement, framework.cell_rows()));
  QueryPlan plan;
  plan.statement = statement;
  if (eval.from_cell()) {
    plan.scan = PlanScanKind::kCellScan;
    return plan;
  }
  if (eval.window_begin() >= eval.window_end()) {
    plan.scan = PlanScanKind::kEmptyScan;
    return plan;
  }

  const ExplorationQuery lowered =
      LowerToExploration(eval, framework.cells(), &plan.cell_restrict);
  plan.query = lowered;

  const PlannerStatistics stats = framework.CollectPlannerStatistics(
      eval.window_begin(), eval.window_end());
  plan.stats_available = stats.available;
  plan.window_fully_resolved = stats.window_fully_resolved;
  plan.summary_eligible = eval.summary_eligible();
  plan.leaves = stats.leaves.size();

  // Cheapest first: answer from summaries (zero decode), then from the
  // cache (zero decode), then pick the cheaper scan.
  if (eval.summary_eligible() && stats.available &&
      stats.window_fully_resolved) {
    plan.scan = PlanScanKind::kSummaryAnswer;
    return plan;
  }
  if (cache != nullptr) {
    if (cache->WouldServe(lowered)) {
      plan.scan = PlanScanKind::kCacheServe;
      return plan;
    }
    const ExplorationQuery row_query = RowQueryFor(lowered);
    if (cache->WouldServe(row_query)) {
      plan.scan = PlanScanKind::kCacheServe;
      plan.query = row_query;
      return plan;
    }
  }

  if (!stats.available) {
    // No statistics (baseline frameworks): push the restriction down
    // anyway — restricting never decodes more than scanning everything.
    plan.scan = PlanScanKind::kProjectedScan;
    return plan;
  }

  std::unordered_set<std::string> wanted;
  if (lowered.has_box) {
    const std::vector<std::string> in_box =
        framework.cells().CellsInBox(lowered.box);
    wanted.insert(in_box.begin(), in_box.end());
  }
  const bool can_skip = stats.spatial_leaf_skip && lowered.has_box;
  const TableSchema& fact = eval.is_cdr() ? CdrSchema() : NmsSchema();
  const TableProjection fact_projection = ScanProjection(
      fact, lowered.attributes, fact.IndexOf("ts"), fact.IndexOf("cell_id"));
  const TableProjection cdr_projection =
      lowered.want_cdr ? fact_projection : SkipTable();
  const TableProjection nms_projection =
      lowered.want_nms ? fact_projection : SkipTable();

  for (const PlannerLeafInfo& leaf : stats.leaves) {
    const LeafDecodeStats& ds = *leaf.stats;
    // Fragment-cache discount: decoded bytes of this leaf resident in the
    // framework's fragment cache (at the current generation) will not be
    // produced again, so a cached fragment prices at ~0. Saturating — the
    // resident bytes can exceed a *projected* decode's cost (the cache may
    // hold columns this query does not read). Zero without a cache, so
    // every cost below is byte-for-byte the pre-cache prediction.
    const uint64_t cached = leaf.fragment_cached_bytes;
    auto discounted = [cached](uint64_t cost) {
      return cost > cached ? cost - cached : 0;
    };
    plan.cost_row += discounted(ds.FullDecodeBytes());
    if (can_skip && leaf.summary != nullptr &&
        !SummaryIntersectsCells(*leaf.summary, wanted)) {
      ++plan.leaves_skipped;
      continue;
    }
    if (leaf.delta || !ds.columnar) {
      // Row (or differential) leaf: a restricted decode still inflates the
      // full text; for deltas the leaf's own text is a floor (the chain's
      // predecessors materialize too).
      plan.cost_projected +=
          discounted(ds.columnar ? ds.FullDecodeBytes() : ds.raw_bytes);
      continue;
    }
    uint64_t leaf_cost = ds.meta_bytes;
    if (lowered.has_box) leaf_cost += ds.spidx_bytes;
    leaf_cost += ColumnarTableBytes(ds.cdr_column_bytes, cdr_projection);
    leaf_cost += ColumnarTableBytes(ds.nms_column_bytes, nms_projection);
    plan.cost_projected += discounted(leaf_cost);
  }

  // Ties go to the row scan: when restriction buys nothing, the plain path
  // avoids the projection machinery entirely.
  if (plan.cost_projected < plan.cost_row) {
    plan.scan = PlanScanKind::kProjectedScan;
    plan.predicted_bytes = plan.cost_projected;
  } else {
    plan.scan = PlanScanKind::kRowScan;
    plan.predicted_bytes = plan.cost_row;
  }
  return plan;
}

Result<SqlResult> ExecutePlan(Framework& framework, const QueryPlan& plan,
                              ResultCache* cache,
                              uint64_t* actual_bytes_decoded) {
  if (actual_bytes_decoded != nullptr) *actual_bytes_decoded = 0;
  SPATE_ASSIGN_OR_RETURN(
      SqlEvaluation eval,
      SqlEvaluation::Prepare(plan.statement, framework.cell_rows()));
  switch (plan.scan) {
    case PlanScanKind::kCellScan:
      for (const Record& row : framework.cell_rows()) eval.ConsumeRow(row);
      return eval.Finish();
    case PlanScanKind::kEmptyScan:
      return eval.Finish();
    case PlanScanKind::kSummaryAnswer: {
      SPATE_ASSIGN_OR_RETURN(
          NodeSummary summary,
          framework.AggregateWindow(eval.window_begin(), eval.window_end()));
      return eval.AnswerFromSummary(summary);
    }
    case PlanScanKind::kCacheServe: {
      if (cache != nullptr) {
        std::optional<QueryResult> hit =
            cache->Lookup(plan.query, framework.cells());
        if (hit.has_value()) {
          const std::vector<Record>& rows =
              eval.is_cdr() ? hit->cdr_rows : hit->nms_rows;
          for (const Record& row : rows) eval.ConsumeRow(row);
          return eval.Finish();
        }
      }
      // Raced out between planning and execution (eviction, Clear): run
      // the same lowered query as a scan — bit-identical, just slower.
      return RunScan(framework, plan.query, eval, cache, actual_bytes_decoded,
                     /*projected=*/true);
    }
    case PlanScanKind::kProjectedScan:
      return RunScan(framework, plan.query, eval, cache, actual_bytes_decoded,
                     /*projected=*/true);
    case PlanScanKind::kRowScan:
      return RunScan(framework, RowQueryFor(plan.query), eval, cache,
                     actual_bytes_decoded, /*projected=*/false);
  }
  return Status::Internal("sql: unreachable plan kind");
}

Result<SqlResult> ExecutePlannedSql(Framework& framework,
                                    std::string_view sql,
                                    ResultCache* cache) {
  SPATE_ASSIGN_OR_RETURN(SelectStatement statement, ParseSql(sql));
  SPATE_ASSIGN_OR_RETURN(QueryPlan plan,
                         PlanSelect(framework, statement, cache));
  return ExecutePlan(framework, plan, cache);
}

Result<PreparedStatement> PrepareStatement(std::string_view sql) {
  SPATE_ASSIGN_OR_RETURN(SelectStatement statement, ParseSql(sql));
  PreparedStatement prepared;
  prepared.num_params = statement.num_params;
  prepared.statement = std::move(statement);
  return prepared;
}

Result<SelectStatement> BindParams(const PreparedStatement& prepared,
                                   const std::vector<std::string>& params) {
  if (params.size() != static_cast<size_t>(prepared.num_params)) {
    return Status::InvalidArgument(
        "sql: statement takes " + std::to_string(prepared.num_params) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  SelectStatement statement = prepared.statement;
  for (Predicate& pred : statement.where) {
    if (pred.param >= 0) {
      pred.literal = params[static_cast<size_t>(pred.param)];
      pred.param = -1;
    }
  }
  statement.num_params = 0;
  return statement;
}

}  // namespace spate
