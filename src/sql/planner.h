#ifndef SPATE_SQL_PLANNER_H_
#define SPATE_SQL_PLANNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "query/result_cache.h"
#include "sql/ast.h"
#include "sql/executor.h"

namespace spate {

/// The access path a plan uses to reach the fact rows, cheapest first in
/// the planner's preference order. Whatever path is chosen, the rows (or
/// summary) feed the same `SqlEvaluation`, so every plan returns results
/// bit-identical to the naive `ExecuteSql` full scan — the planner may only
/// ever change *how much work* producing them takes.
enum class PlanScanKind {
  /// FROM CELL: answered from the in-memory inventory, no storage touched.
  kCellScan,
  /// The ts predicates are contradictory (empty window): nothing to read.
  kEmptyScan,
  /// Aggregate answered from materialized node summaries (highlight-only):
  /// zero decode, valid only for the whitelisted aggregate shapes over a
  /// fully-resolved epoch-aligned window.
  kSummaryAnswer,
  /// A `ResultCache` entry covers the lowered query: rows replayed from
  /// memory, zero decode (falls back to a scan if raced out by eviction).
  kCacheServe,
  /// `ScanWindowProjected` with the lowered attribute set, fact-table mask
  /// and optional cell box: decodes only the needed column chunks and
  /// spatially skips provably-disjoint leaves.
  kProjectedScan,
  /// Plain full-window `ScanWindow`: every in-window byte is decoded. The
  /// fallback when restriction would not beat it (e.g. `SELECT *` over
  /// row-layout leaves).
  kRowScan,
};

/// Canonical names of every node an EXPLAIN tree can contain: the scan
/// kinds above plus the shaping nodes layered over them. tools/lint.py's
/// docs-consistency gate cross-checks the plan-node table of docs/SQL.md
/// against this list — add a node here and the build reminds you to
/// document it.
inline constexpr const char* kPlanNodeNames[] = {
    "Result",        "Limit",    "Sort",          "Aggregate",
    "Filter",        "Join",     "ProjectedScan", "RowScan",
    "SummaryAnswer", "CacheServe", "CellScan",    "EmptyScan",
};

/// EXPLAIN name of a scan kind (an entry of `kPlanNodeNames`).
const char* PlanScanKindName(PlanScanKind kind);

/// A costed execution plan for one SELECT statement. Produced by
/// `PlanSelect`, consumed by `ExecutePlan` and `RenderPlan` (sql/explain.h).
struct QueryPlan {
  /// The planned statement (self-contained copy; evaluations made from the
  /// plan point into it).
  SelectStatement statement;
  PlanScanKind scan = PlanScanKind::kRowScan;
  /// The lowered exploration query of scan-backed plans: attribute
  /// selection (always including ts + cell_id so predicates stay
  /// evaluable), temporal window, optional degenerate cell box and the
  /// fact-table mask. `kRowScan` uses only its window; `kCacheServe` holds
  /// the exact query the cache hit was probed with.
  ExplorationQuery query;
  /// Predicted decompressed bytes of the chosen path (the number EXPLAIN
  /// prints against `ScanStats::bytes_decoded`). Exact for non-differential
  /// SPATE stores; a floor when differential leaves must materialize their
  /// delta chains. Zero for plans that decode nothing.
  uint64_t predicted_bytes = 0;
  /// Both sides of the scan decision (0 when statistics are unavailable).
  uint64_t cost_row = 0;
  uint64_t cost_projected = 0;
  /// In-window leaves, and how many of them the projected path would skip
  /// spatially.
  size_t leaves = 0;
  size_t leaves_skipped = 0;
  bool stats_available = false;
  bool window_fully_resolved = false;
  /// The statement's shape allows summary answering (the plan uses it only
  /// when the window statistics also permit).
  bool summary_eligible = false;
  /// The `cell_id = <literal>` restriction pushed down as a degenerate box
  /// (empty when none).
  std::string cell_restrict;
};

/// Lowers a prepared evaluation to the exploration query its scans run:
/// the referenced fact columns (plus ts + cell_id) as the attribute
/// selection, the ts-predicate window, the fact-table mask, and — when the
/// evaluation pins a single known cell — a degenerate box at that cell's
/// coordinates. Residual predicates are always re-applied row-side, so the
/// lowering only ever over-approximates. `cell_restrict` (optional)
/// receives the pushed-down cell id, empty when none. Shared by the
/// planner and the serving tier's SQL front door, so both scatter the same
/// restricted query.
ExplorationQuery LowerToExploration(const SqlEvaluation& eval,
                                    const CellDirectory& cells,
                                    std::string* cell_restrict = nullptr);

/// Plans `statement` against `framework`'s statistics
/// (`CollectPlannerStatistics`) and, optionally, a `ResultCache` to probe
/// for servable entries. Statement errors (unknown columns, unbound
/// parameters, ...) surface here with the executor's diagnostics.
Result<QueryPlan> PlanSelect(Framework& framework,
                             const SelectStatement& statement,
                             ResultCache* cache = nullptr);

/// Executes a plan. `cache` (optional) is consulted by `kCacheServe` plans
/// and fed by completed scans; `actual_bytes_decoded` (optional) receives
/// the scan's `ScanStats::bytes_decoded` (0 for plans that decode
/// nothing) — what EXPLAIN reports against `QueryPlan::predicted_bytes`.
Result<SqlResult> ExecutePlan(Framework& framework, const QueryPlan& plan,
                              ResultCache* cache = nullptr,
                              uint64_t* actual_bytes_decoded = nullptr);

/// Parses, plans and executes in one call — the planned counterpart of
/// `ExecuteSql(framework, sql)`, guaranteed bit-identical to it.
Result<SqlResult> ExecutePlannedSql(Framework& framework,
                                    std::string_view sql,
                                    ResultCache* cache = nullptr);

/// A parsed statement with `?` placeholders awaiting positional binding —
/// SPATE's prepared statements. Parsing and validation costs are paid once;
/// each execution binds fresh literals and replans (plans depend on the
/// literals: the window, the cell box and cache hits all do).
struct PreparedStatement {
  SelectStatement statement;
  int num_params = 0;
};

/// Parses `sql` into a prepared statement (zero `?` placeholders is fine —
/// the statement is then bindable with no parameters).
Result<PreparedStatement> PrepareStatement(std::string_view sql);

/// Binds positional parameters, yielding an executable statement. `params`
/// must have exactly `prepared.num_params` entries; each is substituted as
/// a literal (numbers and strings alike — predicates compare numerically
/// when both sides parse, textually otherwise).
Result<SelectStatement> BindParams(const PreparedStatement& prepared,
                                   const std::vector<std::string>& params);

}  // namespace spate

#endif  // SPATE_SQL_PLANNER_H_
