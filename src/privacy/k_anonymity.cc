#include "privacy/k_anonymity.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "common/strings.h"

namespace spate {
namespace {

/// Equivalence-class key of one row over the generalized quasi-identifiers.
std::string ClassKey(const Record& row,
                     const std::vector<QuasiIdentifier>& qis,
                     const std::vector<int>& levels) {
  std::string key;
  for (size_t i = 0; i < qis.size(); ++i) {
    key += GeneralizeValue(FieldAsString(row, qis[i].column), qis[i].kind,
                           levels[i]);
    key.push_back('\x1f');
  }
  return key;
}

/// Number of rows in equivalence classes smaller than k.
size_t CountViolators(const std::vector<Record>& rows,
                      const std::vector<QuasiIdentifier>& qis,
                      const std::vector<int>& levels, int k) {
  std::unordered_map<std::string, size_t> classes;
  for (const Record& row : rows) ++classes[ClassKey(row, qis, levels)];
  size_t violators = 0;
  for (const auto& [key, count] : classes) {
    if (count < static_cast<size_t>(k)) violators += count;
  }
  return violators;
}

}  // namespace

std::string GeneralizeValue(const std::string& value,
                            GeneralizationKind kind, int level) {
  if (level <= 0) return value;
  switch (kind) {
    case GeneralizationKind::kSuffixMask: {
      std::string out = value;
      const size_t mask = std::min<size_t>(out.size(),
                                           static_cast<size_t>(level));
      for (size_t i = out.size() - mask; i < out.size(); ++i) out[i] = '*';
      return out;
    }
    case GeneralizationKind::kNumericBucket: {
      int64_t v = 0;
      if (!ParseInt64(value, &v)) return "*";
      int64_t bucket = 1;
      for (int i = 0; i < level; ++i) bucket *= 10;
      const int64_t lo = (v / bucket) * bucket - (v < 0 && v % bucket ? bucket : 0);
      char buf[64];
      snprintf(buf, sizeof(buf), "[%lld-%lld]",
               static_cast<long long>(lo),
               static_cast<long long>(lo + bucket - 1));
      return buf;
    }
    case GeneralizationKind::kSuppressOnly:
      return "*";
  }
  return "*";
}

bool IsKAnonymous(const std::vector<Record>& rows,
                  const std::vector<QuasiIdentifier>& quasi_identifiers,
                  int k) {
  if (rows.empty()) return true;
  const std::vector<int> levels(quasi_identifiers.size(), 0);
  return CountViolators(rows, quasi_identifiers, levels, k) == 0;
}

Result<AnonymizationResult> KAnonymize(const std::vector<Record>& rows,
                                       const AnonymizationConfig& config) {
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  for (const QuasiIdentifier& qi : config.quasi_identifiers) {
    if (qi.column < 0) return Status::InvalidArgument("bad QI column");
  }

  AnonymizationResult result;
  result.levels.assign(config.quasi_identifiers.size(), 0);
  const auto& qis = config.quasi_identifiers;

  // Greedy full-domain lattice climb: while the suppression cost is too
  // high, bump the QI level whose increase removes the most violators.
  size_t violators = CountViolators(rows, qis, result.levels, config.k);
  const size_t budget = static_cast<size_t>(
      std::ceil(config.max_suppression_rate * static_cast<double>(rows.size())));
  while (violators > budget) {
    int best_qi = -1;
    size_t best_violators = violators;
    for (size_t i = 0; i < qis.size(); ++i) {
      if (result.levels[i] >= qis[i].max_level) continue;
      std::vector<int> trial = result.levels;
      ++trial[i];
      const size_t v = CountViolators(rows, qis, trial, config.k);
      if (v < best_violators ||
          (best_qi == -1 && v <= best_violators)) {
        best_violators = v;
        best_qi = static_cast<int>(i);
      }
    }
    if (best_qi < 0) break;  // lattice exhausted; fall back to suppression
    ++result.levels[best_qi];
    violators = best_violators;
  }

  // Materialize: generalize QIs, blank dropped columns, suppress residual
  // undersized classes.
  std::unordered_map<std::string, size_t> classes;
  for (const Record& row : rows) {
    ++classes[ClassKey(row, qis, result.levels)];
  }
  result.rows.reserve(rows.size());
  for (const Record& row : rows) {
    if (classes[ClassKey(row, qis, result.levels)] <
        static_cast<size_t>(config.k)) {
      ++result.suppressed;
      continue;
    }
    Record out = row;
    for (size_t i = 0; i < qis.size(); ++i) {
      if (qis[i].column < static_cast<int>(out.size())) {
        out[qis[i].column] = GeneralizeValue(out[qis[i].column], qis[i].kind,
                                             result.levels[i]);
      }
    }
    for (int col : config.drop_columns) {
      if (col >= 0 && col < static_cast<int>(out.size())) out[col].clear();
    }
    result.rows.push_back(std::move(out));
  }
  return result;
}

}  // namespace spate
