#ifndef SPATE_PRIVACY_K_ANONYMITY_H_
#define SPATE_PRIVACY_K_ANONYMITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "telco/record.h"

namespace spate {

/// How a quasi-identifier column generalizes as its level increases
/// (full-domain generalization hierarchies, as in ARX / Sweeney's model).
enum class GeneralizationKind {
  /// Replace the last `level` characters with '*' ("u012345" -> "u012***").
  kSuffixMask,
  /// Round numbers down to a bucket of size 10^level ("137" -> "[130-139]").
  kNumericBucket,
  /// level >= 1 replaces the value with '*' (suppress-only attribute).
  kSuppressOnly,
};

/// One quasi-identifier column and its generalization ladder.
struct QuasiIdentifier {
  int column = 0;
  GeneralizationKind kind = GeneralizationKind::kSuffixMask;
  /// Maximum level the ladder supports.
  int max_level = 4;
};

/// Configuration of the k-anonymity sanitizer (task T5). The paper's T5
/// "generates a k-anonymized dataset by generalizing, substituting ... and
/// removing information as appropriate in order to make the
/// quasi-identifiers indistinguishable among k rows" [Sweeney; ARX].
struct AnonymizationConfig {
  int k = 5;
  std::vector<QuasiIdentifier> quasi_identifiers;
  /// Columns erased outright (direct identifiers, e.g. IMEI).
  std::vector<int> drop_columns;
  /// Keep generalizing while suppression would exceed this fraction of the
  /// table; once below, suppress the residual violating rows.
  double max_suppression_rate = 0.05;
};

struct AnonymizationResult {
  std::vector<Record> rows;
  /// Generalization level chosen per quasi-identifier.
  std::vector<int> levels;
  /// Rows removed because their equivalence class stayed below k.
  size_t suppressed = 0;
};

/// Applies one hierarchy at `level` to a single value. Exposed for tests.
std::string GeneralizeValue(const std::string& value,
                            GeneralizationKind kind, int level);

/// True if every equivalence class over the quasi-identifier columns has at
/// least k rows (rows already generalized).
bool IsKAnonymous(const std::vector<Record>& rows,
                  const std::vector<QuasiIdentifier>& quasi_identifiers,
                  int k);

/// Full-domain generalization + suppression: raises quasi-identifier levels
/// greedily (the bump that removes the most violating rows first) until the
/// residual violators cost less than `max_suppression_rate` of the table,
/// then suppresses them. The result always satisfies k-anonymity (possibly
/// with zero rows).
Result<AnonymizationResult> KAnonymize(const std::vector<Record>& rows,
                                       const AnonymizationConfig& config);

}  // namespace spate

#endif  // SPATE_PRIVACY_K_ANONYMITY_H_
