#include "index/highlights.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "common/coding.h"
#include "telco/schema.h"

namespace spate {
namespace {

void PutDouble(std::string* out, double v) {
  PutFixed64(out, std::bit_cast<uint64_t>(v));
}

bool GetDouble(Slice* in, double* v) {
  uint64_t bits = 0;
  if (!GetFixed64(in, &bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

void PutAggregate(std::string* out, const MetricAggregate& agg) {
  PutVarint64(out, agg.count);
  PutDouble(out, agg.sum);
  PutDouble(out, agg.sum_sq);
  PutDouble(out, agg.min);
  PutDouble(out, agg.max);
}

bool GetAggregate(Slice* in, MetricAggregate* agg) {
  return GetVarint64(in, &agg->count) && GetDouble(in, &agg->sum) &&
         GetDouble(in, &agg->sum_sq) && GetDouble(in, &agg->min) &&
         GetDouble(in, &agg->max);
}

void PutCounts(std::string* out, const std::map<std::string, uint64_t>& m) {
  PutVarint64(out, m.size());
  for (const auto& [key, count] : m) {
    PutLengthPrefixed(out, key);
    PutVarint64(out, count);
  }
}

bool GetCounts(Slice* in, std::map<std::string, uint64_t>* m) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    Slice key;
    uint64_t count = 0;
    if (!GetLengthPrefixed(in, &key) || !GetVarint64(in, &count)) {
      return false;
    }
    (*m)[key.ToString()] = count;
  }
  return true;
}

}  // namespace

std::string_view MetricName(Metric metric) {
  switch (metric) {
    case Metric::kDropCalls:
      return "drop_calls";
    case Metric::kCallAttempts:
      return "call_attempts";
    case Metric::kThroughput:
      return "throughput";
    case Metric::kRssi:
      return "rssi";
    case Metric::kHandoverFails:
      return "handover_fails";
    case Metric::kUpflux:
      return "upflux";
    case Metric::kDownflux:
      return "downflux";
    case Metric::kDuration:
      return "duration";
  }
  return "?";
}

void CellStats::Merge(const CellStats& other) {
  cdr_rows += other.cdr_rows;
  nms_rows += other.nms_rows;
  dropped_calls += other.dropped_calls;
  for (int m = 0; m < kNumMetrics; ++m) metrics[m].Merge(other.metrics[m]);
}

void NodeSummary::AddSnapshot(const Snapshot& snapshot) {
  for (const Record& row : snapshot.cdr) {
    ++cdr_rows_;
    CellStats& cell = per_cell_[FieldAsString(row, kCdrCellId)];
    ++cell.cdr_rows;
    const std::string& result = FieldAsString(row, kCdrResult);
    if (result == "DROP") ++cell.dropped_calls;
    ++call_type_counts_[FieldAsString(row, kCdrCallType)];
    ++result_counts_[result];
    cell.metrics[static_cast<int>(Metric::kUpflux)].Add(
        static_cast<double>(FieldAsInt(row, kCdrUpflux)));
    cell.metrics[static_cast<int>(Metric::kDownflux)].Add(
        static_cast<double>(FieldAsInt(row, kCdrDownflux)));
    cell.metrics[static_cast<int>(Metric::kDuration)].Add(
        static_cast<double>(FieldAsInt(row, kCdrDuration)));
  }
  for (const Record& row : snapshot.nms) {
    ++nms_rows_;
    CellStats& cell = per_cell_[FieldAsString(row, kNmsCellId)];
    ++cell.nms_rows;
    cell.metrics[static_cast<int>(Metric::kDropCalls)].Add(
        static_cast<double>(FieldAsInt(row, kNmsDropCalls)));
    cell.metrics[static_cast<int>(Metric::kCallAttempts)].Add(
        static_cast<double>(FieldAsInt(row, kNmsCallAttempts)));
    cell.metrics[static_cast<int>(Metric::kThroughput)].Add(
        FieldAsDouble(row, kNmsThroughput));
    cell.metrics[static_cast<int>(Metric::kRssi)].Add(
        FieldAsDouble(row, kNmsRssi));
    cell.metrics[static_cast<int>(Metric::kHandoverFails)].Add(
        static_cast<double>(FieldAsInt(row, kNmsHandoverFails)));
  }
}

void NodeSummary::Merge(const NodeSummary& other) {
  cdr_rows_ += other.cdr_rows_;
  nms_rows_ += other.nms_rows_;
  for (const auto& [cell_id, stats] : other.per_cell_) {
    per_cell_[cell_id].Merge(stats);
  }
  for (const auto& [key, count] : other.call_type_counts_) {
    call_type_counts_[key] += count;
  }
  for (const auto& [key, count] : other.result_counts_) {
    result_counts_[key] += count;
  }
}

MetricAggregate NodeSummary::TotalMetric(Metric metric) const {
  MetricAggregate total;
  for (const auto& [cell_id, stats] : per_cell_) {
    total.Merge(stats.metrics[static_cast<int>(metric)]);
  }
  return total;
}

std::vector<Highlight> NodeSummary::ExtractHighlights(double theta) const {
  std::vector<Highlight> highlights;

  // Categorical highlights: rare values of the monitored attributes.
  auto scan = [&](const char* attribute,
                  const std::map<std::string, uint64_t>& counts) {
    uint64_t total = 0;
    for (const auto& [value, count] : counts) total += count;
    if (total == 0) return;
    for (const auto& [value, count] : counts) {
      const double freq = static_cast<double>(count) / total;
      if (freq < theta) {
        highlights.push_back(Highlight{attribute, value, "", freq});
      }
    }
  };
  scan("call_type", call_type_counts_);
  scan("result", result_counts_);

  // Numeric highlights: cells whose drop-call totals peak well above the
  // cross-cell distribution (mean + 2 sigma).
  MetricAggregate cross;
  std::vector<std::pair<const std::string*, double>> totals;
  for (const auto& [cell_id, stats] : per_cell_) {
    const double drops =
        stats.metrics[static_cast<int>(Metric::kDropCalls)].sum +
        static_cast<double>(stats.dropped_calls);
    cross.Add(drops);
    totals.emplace_back(&cell_id, drops);
  }
  if (cross.count >= 4) {
    const double mean = cross.mean();
    const double sigma = std::sqrt(cross.variance());
    if (sigma > 0) {
      for (const auto& [cell_id, drops] : totals) {
        const double z = (drops - mean) / sigma;
        if (z > 2.0) {
          char buf[32];
          snprintf(buf, sizeof(buf), "%.0f", drops);
          highlights.push_back(Highlight{"drop_calls", buf, *cell_id, z});
        }
      }
    }
  }
  return highlights;
}

NodeSummary NodeSummary::FilterCells(
    const std::function<bool(const std::string&)>& keep) const {
  NodeSummary out;
  out.call_type_counts_ = call_type_counts_;
  out.result_counts_ = result_counts_;
  for (const auto& [cell_id, stats] : per_cell_) {
    if (!keep(cell_id)) continue;
    out.per_cell_.emplace(cell_id, stats);
    out.cdr_rows_ += stats.cdr_rows;
    out.nms_rows_ += stats.nms_rows;
  }
  return out;
}

std::string NodeSummary::Serialize() const {
  std::string out;
  PutVarint64(&out, cdr_rows_);
  PutVarint64(&out, nms_rows_);
  PutCounts(&out, call_type_counts_);
  PutCounts(&out, result_counts_);
  PutVarint64(&out, per_cell_.size());
  for (const auto& [cell_id, stats] : per_cell_) {
    PutLengthPrefixed(&out, cell_id);
    PutVarint64(&out, stats.cdr_rows);
    PutVarint64(&out, stats.nms_rows);
    PutVarint64(&out, stats.dropped_calls);
    // Presence bitmap: empty aggregates (a CDR-only cell has no NMS
    // metrics and vice versa) cost one bit instead of 33 bytes.
    uint8_t present = 0;
    for (int m = 0; m < kNumMetrics; ++m) {
      if (stats.metrics[m].count > 0) present |= (1u << m);
    }
    out.push_back(static_cast<char>(present));
    for (int m = 0; m < kNumMetrics; ++m) {
      if (stats.metrics[m].count > 0) PutAggregate(&out, stats.metrics[m]);
    }
  }
  return out;
}

Status NodeSummary::Parse(Slice data, NodeSummary* summary) {
  *summary = NodeSummary();
  if (!GetVarint64(&data, &summary->cdr_rows_) ||
      !GetVarint64(&data, &summary->nms_rows_) ||
      !GetCounts(&data, &summary->call_type_counts_) ||
      !GetCounts(&data, &summary->result_counts_)) {
    return Status::Corruption("node summary: truncated header");
  }
  uint64_t num_cells = 0;
  if (!GetVarint64(&data, &num_cells)) {
    return Status::Corruption("node summary: missing cell count");
  }
  for (uint64_t i = 0; i < num_cells; ++i) {
    Slice cell_id;
    if (!GetLengthPrefixed(&data, &cell_id)) {
      return Status::Corruption("node summary: truncated cell id");
    }
    CellStats stats;
    if (!GetVarint64(&data, &stats.cdr_rows) ||
        !GetVarint64(&data, &stats.nms_rows) ||
        !GetVarint64(&data, &stats.dropped_calls)) {
      return Status::Corruption("node summary: truncated cell stats");
    }
    if (data.empty()) {
      return Status::Corruption("node summary: missing metric bitmap");
    }
    const uint8_t present = static_cast<uint8_t>(data[0]);
    data.RemovePrefix(1);
    for (int m = 0; m < kNumMetrics; ++m) {
      if ((present & (1u << m)) == 0) continue;
      if (!GetAggregate(&data, &stats.metrics[m])) {
        return Status::Corruption("node summary: truncated metric");
      }
      if (stats.metrics[m].count == 0) {
        return Status::Corruption("node summary: empty metric marked present");
      }
    }
    summary->per_cell_.emplace(cell_id.ToString(), stats);
  }
  if (!data.empty()) {
    return Status::Corruption("node summary: trailing bytes");
  }
  return Status::OK();
}

bool NodeSummary::operator==(const NodeSummary& other) const {
  return Serialize() == other.Serialize();
}

}  // namespace spate
