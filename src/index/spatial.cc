#include "index/spatial.h"

#include <algorithm>
#include <cmath>

#include "telco/schema.h"

namespace spate {

CellDirectory::CellDirectory(const std::vector<Record>& cell_rows,
                             int grid_dim)
    : grid_dim_(std::max(1, grid_dim)) {
  cells_.reserve(cell_rows.size());
  bool first = true;
  for (const Record& row : cell_rows) {
    double x = 0, y = 0;
    if (!ParseDouble(FieldAsString(row, kCellX), &x) ||
        !ParseDouble(FieldAsString(row, kCellY), &y)) {
      continue;
    }
    CellInfo info;
    info.id = FieldAsString(row, kCellId);
    info.x = x;
    info.y = y;
    info.tech = FieldAsString(row, kCellTech);
    info.region = FieldAsString(row, kCellRegion);
    info.antenna_id = FieldAsString(row, kCellAntennaId);
    if (first) {
      extent_ = BoundingBox{x, y, x, y};
      first = false;
    } else {
      extent_.min_x = std::min(extent_.min_x, x);
      extent_.min_y = std::min(extent_.min_y, y);
      extent_.max_x = std::max(extent_.max_x, x);
      extent_.max_y = std::max(extent_.max_y, y);
    }
    by_id_.emplace(info.id, cells_.size());
    cells_.push_back(std::move(info));
  }

  grid_.assign(static_cast<size_t>(grid_dim_) * grid_dim_, {});
  for (size_t i = 0; i < cells_.size(); ++i) {
    grid_[GridIndex(cells_[i].x, cells_[i].y)].push_back(i);
  }
}

int CellDirectory::GridIndex(double x, double y) const {
  const double w = std::max(1e-9, extent_.width());
  const double h = std::max(1e-9, extent_.height());
  int gx = static_cast<int>((x - extent_.min_x) / w * grid_dim_);
  int gy = static_cast<int>((y - extent_.min_y) / h * grid_dim_);
  gx = std::clamp(gx, 0, grid_dim_ - 1);
  gy = std::clamp(gy, 0, grid_dim_ - 1);
  return gy * grid_dim_ + gx;
}

const CellInfo* CellDirectory::Find(const std::string& cell_id) const {
  auto it = by_id_.find(cell_id);
  return it == by_id_.end() ? nullptr : &cells_[it->second];
}

std::vector<std::string> CellDirectory::CellsInBox(
    const BoundingBox& box) const {
  std::vector<std::string> out;
  if (cells_.empty()) return out;
  // Visit only the grid tiles overlapping the box.
  const double w = std::max(1e-9, extent_.width());
  const double h = std::max(1e-9, extent_.height());
  auto tile = [&](double v, double lo, double span) {
    return std::clamp(static_cast<int>((v - lo) / span * grid_dim_), 0,
                      grid_dim_ - 1);
  };
  const int gx0 = tile(box.min_x, extent_.min_x, w);
  const int gx1 = tile(box.max_x, extent_.min_x, w);
  const int gy0 = tile(box.min_y, extent_.min_y, h);
  const int gy1 = tile(box.max_y, extent_.min_y, h);
  for (int gy = gy0; gy <= gy1; ++gy) {
    for (int gx = gx0; gx <= gx1; ++gx) {
      for (size_t idx : grid_[gy * grid_dim_ + gx]) {
        const CellInfo& cell = cells_[idx];
        if (box.Contains(cell.x, cell.y)) out.push_back(cell.id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace spate
