#ifndef SPATE_INDEX_TEMPORAL_INDEX_H_
#define SPATE_INDEX_TEMPORAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "index/highlights.h"

namespace spate {

/// Temporal resolution levels of the SPATE index (Fig. 5): 30-minute epoch
/// leaves under day, month and year nodes, with a root spanning everything.
enum class IndexLevel { kEpoch, kDay, kMonth, kYear, kRoot };

std::string_view IndexLevelName(IndexLevel level);

/// Exact decode-cost statistics of one leaf, recorded at ingest (or
/// recomputed during recovery) for the SQL planner's cost model: how many
/// plaintext bytes each kind of read of this leaf produces. For a row leaf
/// only `raw_bytes` is meaningful (any read decompresses the full text);
/// for a columnar leaf the per-chunk sizes predict a projected read
/// exactly — "@meta" plus the selected column chunks, plus "@spidx" when a
/// bounding box restricts rows (`ScanStats::bytes_decoded` counts the
/// same quantities on the decode side).
struct LeafDecodeStats {
  /// The leaf is a 0xCD columnar container (per-chunk fields below apply).
  bool columnar = false;
  /// Row layout: serialized snapshot text size (the cost of any decode).
  uint64_t raw_bytes = 0;
  /// Columnar layout: plaintext size of the "@meta" / "@spidx" chunks.
  uint64_t meta_bytes = 0;
  uint64_t spidx_bytes = 0;
  /// Columnar layout: plaintext size of each per-column chunk, indexed by
  /// column position (CDR and NMS tables respectively).
  std::vector<uint64_t> cdr_column_bytes;
  std::vector<uint64_t> nms_column_bytes;

  /// Bytes of a full (unprojected, unrestricted) decode: the row text, or
  /// "@meta" plus every column chunk ("@spidx" is not decoded then).
  uint64_t FullDecodeBytes() const {
    if (!columnar) return raw_bytes;
    uint64_t total = meta_bytes;
    for (uint64_t b : cdr_column_bytes) total += b;
    for (uint64_t b : nms_column_bytes) total += b;
    return total;
  }
};

/// Leaf of the index: one ingested snapshot. The raw (compressed) bytes live
/// on the DFS at `dfs_path`; the leaf keeps only the materialized summary.
/// After decay the DFS file is gone (`decayed`), but the summary — and all
/// the roll-ups it fed — survive.
struct LeafNode {
  Timestamp epoch_start = 0;
  std::string dfs_path;
  uint64_t stored_bytes = 0;  // compressed size on the DFS (0 once decayed)
  NodeSummary summary;
  bool decayed = false;
  /// Differential storage: the blob is a delta against the previous epoch's
  /// text (decoding requires materializing the chain back to a keyframe).
  bool delta = false;
  /// Plaintext sizes a decode of this leaf produces (SQL planner input).
  LeafDecodeStats decode_stats;
};

struct DayNode {
  Timestamp day_start = 0;
  std::vector<LeafNode> leaves;
  NodeSummary summary;
  /// Recovery: the day's raw leaves decayed before the restart; only the
  /// summary survives (windows touching it are not fully resolved).
  bool sealed = false;
};

struct MonthNode {
  Timestamp month_start = 0;
  std::vector<DayNode> days;
  NodeSummary summary;
};

struct YearNode {
  Timestamp year_start = 0;
  std::vector<MonthNode> months;
  NodeSummary summary;
};

/// The decaying policy ("data fungus"). SPATE's chosen fungus is "Evict
/// Oldest Individuals" (Section V-C): raw snapshot leaves older than the
/// full-resolution window are purged from replicated storage oldest-first,
/// while every aggregate summary is retained indefinitely.
struct DecayPolicy {
  /// How long raw leaves stay available for exact queries.
  int64_t full_resolution_seconds = 365ll * 86400;
  /// Second decay stage ("progressive loss of detail"): after this horizon
  /// even the day-level summaries decay — day nodes are pruned and the
  /// period is served at month resolution. Clamped to be no shorter than
  /// `full_resolution_seconds` plus one day.
  int64_t day_resolution_seconds = 2ll * 365 * 86400;
  /// When > 0, the eviction horizon is rounded down to a multiple of this
  /// (used by differential storage to evict whole keyframe groups only, so
  /// a delta never outlives the chain it decodes against).
  int64_t horizon_alignment_seconds = 0;
};

/// Result of looking up the smallest single node covering a time window.
struct CoveringNode {
  IndexLevel level = IndexLevel::kRoot;
  Timestamp start = 0;
  const NodeSummary* summary = nullptr;
};

/// Multi-resolution temporal index with incremental (rightmost-path)
/// insertion, bottom-up highlight roll-up and decay (the paper's Indexing
/// layer: incremence + highlights + decaying modules).
///
/// Thread-safety: not internally synchronized. Mutators (`Insert`, decay,
/// seal) run only on the framework's ingestion thread, which owns the
/// object. Const lookups (`LeavesInWindow`, covering-node queries) are safe
/// to call from many threads *only while no mutator runs*; the framework's
/// scan fan-out relies on exactly this — worker threads hold `const
/// LeafNode*` pointers collected up front while the external
/// one-writer-or-many-readers contract (see DESIGN.md "Concurrency model")
/// guarantees no concurrent `Insert` invalidates them mid-scan.
class SPATE_EXTERNALLY_SYNCHRONIZED TemporalIndex {
 public:
  TemporalIndex() = default;

  /// Incremence module: appends a leaf on the rightmost path, creating
  /// dummy day/month/year nodes as periods roll over. Leaves must arrive in
  /// strictly increasing epoch order (the arrival clock of the stream);
  /// out-of-order snapshots are rejected with InvalidArgument. A leaf that
  /// arrives already `decayed` acts as a placeholder for data lost to
  /// storage faults (recovery uses this): it counts as decayed and windows
  /// touching it are not fully resolved.
  Status AddLeaf(LeafNode leaf);

  /// Smallest single node (day -> month -> year -> root) whose period fully
  /// covers [begin, end) — the paper's index descent for Q(a, b, w).
  CoveringNode FindCovering(Timestamp begin, Timestamp end) const;

  /// Non-decayed leaves whose epoch intersects [begin, end), in time order.
  std::vector<const LeafNode*> LeavesInWindow(Timestamp begin,
                                              Timestamp end) const;

  /// The leaf whose epoch starts exactly at `epoch_start`, or nullptr.
  /// Returns decayed leaves too (callers check `decayed`).
  const LeafNode* FindLeaf(Timestamp epoch_start) const;

  /// Merged summary of all data in [begin, end), using whole-day node
  /// summaries where the window covers a full day and leaf summaries at the
  /// fringes. Works across decayed regions (summaries outlive raw leaves).
  NodeSummary SummarizeWindow(Timestamp begin, Timestamp end) const;

  /// True if every ingested leaf intersecting the window is still at full
  /// resolution (none decayed) — exact queries are then possible.
  bool WindowFullyResolved(Timestamp begin, Timestamp end) const;

  /// Recovery path: appends a *sealed* day that has no resident leaves
  /// (its raw data decayed before the restart) but whose persisted summary
  /// survives; the summary rolls up into month/year/root as usual. Must
  /// respect stream order like `AddLeaf`.
  Status AddSealedDay(Timestamp day_start, NodeSummary summary);

  /// Decaying module: evicts raw leaves older than the policy window,
  /// oldest first; then prunes whole day nodes older than the day-summary
  /// window (their data lives on in the month/year/root summaries).
  /// `evict` is called once per evicted leaf and `evict_day` once per
  /// pruned day (e.g. to delete the DFS files). Returns the number of
  /// leaves evicted.
  size_t Decay(const DecayPolicy& policy, Timestamp now,
               const std::function<void(const LeafNode&)>& evict,
               const std::function<void(const DayNode&)>& evict_day = nullptr);

  const NodeSummary& root_summary() const { return root_summary_; }
  const std::vector<YearNode>& years() const { return years_; }

  size_t num_leaves() const { return num_leaves_; }
  size_t num_decayed() const { return num_decayed_; }
  /// Day nodes pruned by the second decay stage.
  size_t num_pruned_days() const { return num_pruned_days_; }
  /// Compressed bytes still held by non-decayed leaves.
  uint64_t resident_leaf_bytes() const { return resident_leaf_bytes_; }
  /// Timestamp of the newest ingested leaf (-1 when empty).
  Timestamp newest_epoch() const { return newest_epoch_; }
  /// Start of the oldest period ever ingested (-1 when empty).
  Timestamp first_epoch() const { return first_epoch_; }
  /// Everything before this timestamp has lost full resolution.
  Timestamp decayed_until() const { return decayed_until_; }

  /// Deep structural self-check (the index-shape invariant of
  /// `spate::check::Fsck`): calendar alignment and strict time order at
  /// every level, arity bounds (<= 12 months/year, <= 31 days/month,
  /// <= 48 epoch leaves/day), the open rightmost spine (the newest leaf or
  /// sealed day lives at the end of the last day/month/year), sealed days
  /// carrying no leaves, and the derived counters
  /// (`num_leaves`/`num_decayed`/`resident_leaf_bytes`/epoch bounds)
  /// agreeing with a full walk. Returns every problem found, empty when the
  /// shape is sound. O(total leaves) — fsck-time, not hot-path.
  std::vector<std::string> ShapeProblems() const;

 private:
  /// Test-only corruption hook: fsck tests reach through this to seed
  /// shape/highlight/decay violations that no public mutator can produce.
  friend class TemporalIndexTestAccess;

  std::vector<YearNode> years_;
  NodeSummary root_summary_;
  size_t num_leaves_ = 0;
  size_t num_decayed_ = 0;
  size_t num_pruned_days_ = 0;
  uint64_t resident_leaf_bytes_ = 0;
  Timestamp newest_epoch_ = -1;
  Timestamp first_epoch_ = -1;
  Timestamp decayed_until_ = -1;
};

}  // namespace spate

#endif  // SPATE_INDEX_TEMPORAL_INDEX_H_
