#include "index/leaf_spatial.h"

#include "common/coding.h"
#include "telco/schema.h"

namespace spate {
namespace {

void PutRowList(std::string* out, const std::vector<uint32_t>& rows) {
  PutVarint64(out, rows.size());
  uint32_t prev = 0;
  for (uint32_t row : rows) {
    PutVarint32(out, row - prev);  // ascending -> small deltas
    prev = row;
  }
}

bool GetRowList(Slice* in, std::vector<uint32_t>* rows) {
  uint64_t count = 0;
  if (!GetVarint64(in, &count)) return false;
  rows->clear();
  rows->reserve(static_cast<size_t>(count));
  uint32_t value = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(in, &delta)) return false;
    value += delta;
    rows->push_back(value);
  }
  return true;
}

}  // namespace

LeafSpatialIndex LeafSpatialIndex::Build(const Snapshot& snapshot) {
  LeafSpatialIndex index;
  for (uint32_t i = 0; i < snapshot.cdr.size(); ++i) {
    index.cells_[FieldAsString(snapshot.cdr[i], kCdrCellId)].cdr.push_back(i);
  }
  for (uint32_t i = 0; i < snapshot.nms.size(); ++i) {
    index.cells_[FieldAsString(snapshot.nms[i], kNmsCellId)].nms.push_back(i);
  }
  return index;
}

const std::vector<uint32_t>* LeafSpatialIndex::CdrRows(
    const std::string& cell_id) const {
  auto it = cells_.find(cell_id);
  return it == cells_.end() ? nullptr : &it->second.cdr;
}

const std::vector<uint32_t>* LeafSpatialIndex::NmsRows(
    const std::string& cell_id) const {
  auto it = cells_.find(cell_id);
  return it == cells_.end() ? nullptr : &it->second.nms;
}

std::vector<std::string> LeafSpatialIndex::Cells() const {
  std::vector<std::string> out;
  out.reserve(cells_.size());
  for (const auto& [cell_id, rows] : cells_) out.push_back(cell_id);
  return out;
}

std::string LeafSpatialIndex::Serialize() const {
  std::string out;
  PutVarint64(&out, cells_.size());
  for (const auto& [cell_id, rows] : cells_) {
    PutLengthPrefixed(&out, cell_id);
    PutRowList(&out, rows.cdr);
    PutRowList(&out, rows.nms);
  }
  return out;
}

Status LeafSpatialIndex::Parse(Slice data, LeafSpatialIndex* index) {
  index->cells_.clear();
  uint64_t num_cells = 0;
  if (!GetVarint64(&data, &num_cells)) {
    return Status::Corruption("leaf spatial index: missing cell count");
  }
  for (uint64_t i = 0; i < num_cells; ++i) {
    Slice cell_id;
    CellRows rows;
    if (!GetLengthPrefixed(&data, &cell_id) ||
        !GetRowList(&data, &rows.cdr) || !GetRowList(&data, &rows.nms)) {
      return Status::Corruption("leaf spatial index: truncated entry");
    }
    index->cells_.emplace(cell_id.ToString(), std::move(rows));
  }
  if (!data.empty()) {
    return Status::Corruption("leaf spatial index: trailing bytes");
  }
  return Status::OK();
}

}  // namespace spate
