#ifndef SPATE_INDEX_LEAF_SPATIAL_H_
#define SPATE_INDEX_LEAF_SPATIAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "telco/snapshot.h"

namespace spate {

/// Optional per-leaf spatial index (Section V-A): maps each cell id to the
/// row positions it occupies inside one snapshot, so a bounding-box query
/// can jump straight to the matching rows after decompression instead of
/// filtering every row.
///
/// The paper considers embedding such an index in every leaf and decides
/// against it ("snapshots are usually not very large, thus an additional
/// index would only provide modest additional query response time benefits
/// at the price of additional storage space"); SPATE exposes it behind
/// `SpateOptions::leaf_spatial_index` and `bench_ablation_leaf_spatial`
/// reproduces that trade-off.
class LeafSpatialIndex {
 public:
  LeafSpatialIndex() = default;

  /// Builds the index from a parsed snapshot.
  static LeafSpatialIndex Build(const Snapshot& snapshot);

  /// Row positions of `cell_id` within the snapshot's CDR table (ascending).
  const std::vector<uint32_t>* CdrRows(const std::string& cell_id) const;
  /// Row positions of `cell_id` within the snapshot's NMS table (ascending).
  const std::vector<uint32_t>* NmsRows(const std::string& cell_id) const;

  /// Cells present in the snapshot, sorted.
  std::vector<std::string> Cells() const;

  size_t num_cells() const { return cells_.size(); }

  /// Compact binary serialization (varint-delta row lists).
  std::string Serialize() const;
  static Status Parse(Slice data, LeafSpatialIndex* index);

  /// Memberwise equality. The comparison bottoms out in `CellRows`'s
  /// defaulted `operator==` — both tables' row-position lists participate,
  /// so two indexes differing only in (say) an NMS row list compare
  /// unequal in both directions.
  bool operator==(const LeafSpatialIndex& other) const = default;

 private:
  struct CellRows {
    std::vector<uint32_t> cdr;
    std::vector<uint32_t> nms;

    bool operator==(const CellRows& other) const = default;
  };
  std::map<std::string, CellRows> cells_;
};

}  // namespace spate

#endif  // SPATE_INDEX_LEAF_SPATIAL_H_
