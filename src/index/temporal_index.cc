#include "index/temporal_index.h"

#include "common/check.h"
#include "common/failpoint.h"

namespace spate {

std::string_view IndexLevelName(IndexLevel level) {
  switch (level) {
    case IndexLevel::kEpoch:
      return "epoch";
    case IndexLevel::kDay:
      return "day";
    case IndexLevel::kMonth:
      return "month";
    case IndexLevel::kYear:
      return "year";
    case IndexLevel::kRoot:
      return "root";
  }
  return "?";
}

Status TemporalIndex::AddLeaf(LeafNode leaf) {
  // Before any structural mutation: an injected insertion failure leaves
  // the index exactly as it was (callers clean up the stored blob).
  SPATE_FAILPOINT("index.add_leaf");
  if (leaf.epoch_start <= newest_epoch_) {
    return Status::InvalidArgument(
        "incremence requires strictly increasing epochs (got " +
        FormatCompact(leaf.epoch_start) + " after " +
        FormatCompact(newest_epoch_) + ")");
  }
  const Timestamp year_start = TruncateToYear(leaf.epoch_start);
  const Timestamp month_start = TruncateToMonth(leaf.epoch_start);
  const Timestamp day_start = TruncateToDay(leaf.epoch_start);

  // Rightmost-path descent, creating dummy nodes as periods roll over.
  if (years_.empty() || years_.back().year_start != year_start) {
    years_.push_back(YearNode{year_start, {}, {}});
  }
  YearNode& year = years_.back();
  if (year.months.empty() || year.months.back().month_start != month_start) {
    year.months.push_back(MonthNode{month_start, {}, {}});
  }
  MonthNode& month = year.months.back();
  if (month.days.empty() || month.days.back().day_start != day_start) {
    month.days.push_back(DayNode{day_start, {}, {}});
  }
  DayNode& day = month.days.back();

  // Highlights module: fold the leaf summary up the rightmost path. The
  // paper batches this at period boundaries; merging incrementally yields
  // the same cube with the cost amortized per snapshot.
  day.summary.Merge(leaf.summary);
  month.summary.Merge(leaf.summary);
  year.summary.Merge(leaf.summary);
  root_summary_.Merge(leaf.summary);

  if (first_epoch_ < 0) first_epoch_ = leaf.epoch_start;
  newest_epoch_ = leaf.epoch_start;
  resident_leaf_bytes_ += leaf.stored_bytes;
  ++num_leaves_;
  // Recovery may insert placeholders for leaves lost to storage faults:
  // already decayed, so windows touching them degrade to summaries.
  if (leaf.decayed) ++num_decayed_;
  day.leaves.push_back(std::move(leaf));
#ifndef NDEBUG
  // Post-insert shape hook: the O(1) slice of `ShapeProblems()` covering
  // the node just touched (the full walk is fsck-time only).
  const LeafNode& inserted = day.leaves.back();
  SPATE_DCHECK_EQ(inserted.epoch_start, newest_epoch_);
  SPATE_DCHECK_EQ(TruncateToEpoch(inserted.epoch_start),
                  inserted.epoch_start);
  SPATE_DCHECK_EQ(TruncateToDay(inserted.epoch_start), day.day_start);
  if (day.leaves.size() >= 2) {
    SPATE_DCHECK_LT(day.leaves[day.leaves.size() - 2].epoch_start,
                    inserted.epoch_start);
  }
  SPATE_DCHECK_LE(day.leaves.size(), static_cast<size_t>(kEpochsPerDay));
#endif
  return Status::OK();
}

Status TemporalIndex::AddSealedDay(Timestamp day_start, NodeSummary summary) {
  if (day_start != TruncateToDay(day_start)) {
    return Status::InvalidArgument("sealed day must start at midnight");
  }
  if (day_start <= newest_epoch_) {
    return Status::InvalidArgument(
        "sealed day would land before the newest leaf");
  }
  const Timestamp year_start = TruncateToYear(day_start);
  const Timestamp month_start = TruncateToMonth(day_start);
  if (years_.empty() || years_.back().year_start != year_start) {
    years_.push_back(YearNode{year_start, {}, {}});
  }
  YearNode& year = years_.back();
  if (year.months.empty() || year.months.back().month_start != month_start) {
    year.months.push_back(MonthNode{month_start, {}, {}});
  }
  MonthNode& month = year.months.back();
  month.days.push_back(DayNode{day_start, {}, {}, /*sealed=*/true});
  DayNode& day = month.days.back();
  day.summary.Merge(summary);
  month.summary.Merge(summary);
  year.summary.Merge(summary);
  root_summary_.Merge(summary);
  // The whole day is decayed: nothing newer than its last epoch may be a
  // sealed day or an earlier leaf.
  newest_epoch_ = day_start + 86400 - kEpochSeconds;
  if (first_epoch_ < 0) first_epoch_ = day_start;
  if (decayed_until_ < day_start + 86400) decayed_until_ = day_start + 86400;
  return Status::OK();
}

CoveringNode TemporalIndex::FindCovering(Timestamp begin,
                                         Timestamp end) const {
  CoveringNode result;
  result.level = IndexLevel::kRoot;
  result.start = 0;
  result.summary = &root_summary_;
  if (begin >= end) return result;
  const Timestamp last = end - 1;

  if (TruncateToYear(begin) != TruncateToYear(last)) return result;
  for (const YearNode& year : years_) {
    if (year.year_start != TruncateToYear(begin)) continue;
    result.level = IndexLevel::kYear;
    result.start = year.year_start;
    result.summary = &year.summary;
    if (TruncateToMonth(begin) != TruncateToMonth(last)) return result;
    for (const MonthNode& month : year.months) {
      if (month.month_start != TruncateToMonth(begin)) continue;
      result.level = IndexLevel::kMonth;
      result.start = month.month_start;
      result.summary = &month.summary;
      if (TruncateToDay(begin) != TruncateToDay(last)) return result;
      for (const DayNode& day : month.days) {
        if (day.day_start == TruncateToDay(begin)) {
          result.level = IndexLevel::kDay;
          result.start = day.day_start;
          result.summary = &day.summary;
          return result;
        }
      }
      return result;
    }
    return result;
  }
  return result;
}

std::vector<const LeafNode*> TemporalIndex::LeavesInWindow(
    Timestamp begin, Timestamp end) const {
  std::vector<const LeafNode*> out;
  for (const YearNode& year : years_) {
    for (const MonthNode& month : year.months) {
      for (const DayNode& day : month.days) {
        if (day.day_start + 86400 <= begin || day.day_start >= end) continue;
        for (const LeafNode& leaf : day.leaves) {
          if (leaf.epoch_start + kEpochSeconds <= begin ||
              leaf.epoch_start >= end || leaf.decayed) {
            continue;
          }
          out.push_back(&leaf);
        }
      }
    }
  }
  return out;
}

NodeSummary TemporalIndex::SummarizeWindow(Timestamp begin,
                                           Timestamp end) const {
  NodeSummary out;
  for (const YearNode& year : years_) {
    for (const MonthNode& month : year.months) {
      // Whole month covered: use its roll-up directly. This also keeps
      // aggregates correct for months whose day nodes were pruned by the
      // second decay stage.
      const Timestamp month_end = FromCivil([&] {
        CivilTime ct = ToCivil(month.month_start);
        ct.month += 1;
        return ct;
      }());
      if (month.month_start >= begin && month_end <= end) {
        out.Merge(month.summary);
        continue;
      }
      for (const DayNode& day : month.days) {
        if (day.day_start + 86400 <= begin || day.day_start >= end) continue;
        if (day.day_start >= begin && day.day_start + 86400 <= end) {
          out.Merge(day.summary);  // whole day covered: use the roll-up
          continue;
        }
        for (const LeafNode& leaf : day.leaves) {
          if (leaf.epoch_start + kEpochSeconds <= begin ||
              leaf.epoch_start >= end) {
            continue;
          }
          out.Merge(leaf.summary);
        }
      }
    }
  }
  return out;
}

bool TemporalIndex::WindowFullyResolved(Timestamp begin, Timestamp end) const {
  // Anything overlapping the decayed prefix of the stream (including day
  // nodes pruned entirely by the second decay stage) lost full resolution.
  if (first_epoch_ >= 0 && begin < decayed_until_ && end > first_epoch_) {
    return false;
  }
  for (const YearNode& year : years_) {
    for (const MonthNode& month : year.months) {
      for (const DayNode& day : month.days) {
        if (day.day_start + 86400 <= begin || day.day_start >= end) continue;
        if (day.sealed) return false;
        for (const LeafNode& leaf : day.leaves) {
          if (leaf.epoch_start + kEpochSeconds <= begin ||
              leaf.epoch_start >= end) {
            continue;
          }
          if (leaf.decayed) return false;
        }
      }
    }
  }
  return true;
}

const LeafNode* TemporalIndex::FindLeaf(Timestamp epoch_start) const {
  const Timestamp day_start = TruncateToDay(epoch_start);
  for (const YearNode& year : years_) {
    if (year.year_start != TruncateToYear(epoch_start)) continue;
    for (const MonthNode& month : year.months) {
      if (month.month_start != TruncateToMonth(epoch_start)) continue;
      for (const DayNode& day : month.days) {
        if (day.day_start != day_start) continue;
        for (const LeafNode& leaf : day.leaves) {
          if (leaf.epoch_start == epoch_start) return &leaf;
        }
        return nullptr;
      }
      return nullptr;
    }
    return nullptr;
  }
  return nullptr;
}

size_t TemporalIndex::Decay(const DecayPolicy& policy, Timestamp now,
                            const std::function<void(const LeafNode&)>& evict,
                            const std::function<void(const DayNode&)>& evict_day) {
  Timestamp horizon = now - policy.full_resolution_seconds;
  if (policy.horizon_alignment_seconds > 0) {
    const int64_t a = policy.horizon_alignment_seconds;
    horizon -= ((horizon % a) + a) % a;  // floor to alignment multiple
  }
  size_t evicted = 0;
  // Stage 1 — Evict Oldest Individuals: walk leaves in time order, stop at
  // the horizon.
  bool done = false;
  for (YearNode& year : years_) {
    for (MonthNode& month : year.months) {
      for (DayNode& day : month.days) {
        for (LeafNode& leaf : day.leaves) {
          if (leaf.epoch_start + kEpochSeconds > horizon) {
            done = true;
            break;
          }
          if (decayed_until_ < leaf.epoch_start + kEpochSeconds) {
            decayed_until_ = leaf.epoch_start + kEpochSeconds;
          }
          if (leaf.decayed) continue;
          if (evict) evict(leaf);
          leaf.decayed = true;
          resident_leaf_bytes_ -= leaf.stored_bytes;
          leaf.stored_bytes = 0;
          ++num_decayed_;
          ++evicted;
        }
        if (done) break;
      }
      if (done) break;
    }
    if (done) break;
  }

  // Stage 2 — progressive loss of detail: prune whole day nodes past the
  // day-resolution horizon. Their summaries were already folded into the
  // month/year/root roll-ups at insertion time, so aggregate exploration
  // degrades to month resolution rather than disappearing.
  const Timestamp day_horizon =
      std::min(horizon - 86400,
               now - std::max(policy.day_resolution_seconds,
                              policy.full_resolution_seconds + 86400));
  for (YearNode& year : years_) {
    for (MonthNode& month : year.months) {
      while (!month.days.empty()) {
        DayNode& day = month.days.front();
        if (day.day_start + 86400 > day_horizon) break;
        // Only prune fully-decayed days (guaranteed by the horizon clamp,
        // but kept as a hard invariant).
        bool all_decayed = true;
        for (const LeafNode& leaf : day.leaves) all_decayed &= leaf.decayed;
        if (!all_decayed) break;
        if (evict_day) evict_day(day);
        if (decayed_until_ < day.day_start + 86400) {
          decayed_until_ = day.day_start + 86400;
        }
        ++num_pruned_days_;
        month.days.erase(month.days.begin());
      }
    }
  }
  return evicted;
}

std::vector<std::string> TemporalIndex::ShapeProblems() const {
  std::vector<std::string> problems;
  auto flag = [&problems](std::string message) {
    problems.push_back(std::move(message));
  };

  // Walk-derived replicas of the incremental counters.
  size_t walked_leaves = 0;
  size_t walked_decayed = 0;
  uint64_t walked_resident_bytes = 0;
  Timestamp walked_first = -1;
  Timestamp walked_newest = -1;
  // The global clock of the walk: every leaf epoch and sealed-day period
  // must start strictly after everything before it (the monotone-epochs /
  // open-rightmost-spine invariant — out-of-order nodes could only have
  // been inserted off the rightmost path).
  Timestamp last_seen = -1;

  Timestamp prev_year = -1;
  for (const YearNode& year : years_) {
    const std::string year_tag = "year " + FormatCompact(year.year_start);
    if (year.year_start != TruncateToYear(year.year_start)) {
      flag(year_tag + ": start not on a year boundary");
    }
    if (year.year_start <= prev_year) {
      flag(year_tag + ": out of order after " + FormatCompact(prev_year));
    }
    prev_year = year.year_start;
    if (year.months.size() > 12) {
      flag(year_tag + ": " + std::to_string(year.months.size()) + " months");
    }
    Timestamp prev_month = -1;
    for (const MonthNode& month : year.months) {
      const std::string month_tag =
          "month " + FormatCompact(month.month_start);
      if (month.month_start != TruncateToMonth(month.month_start)) {
        flag(month_tag + ": start not on a month boundary");
      }
      if (TruncateToYear(month.month_start) != year.year_start) {
        flag(month_tag + ": filed under the wrong " + year_tag);
      }
      if (month.month_start <= prev_month) {
        flag(month_tag + ": out of order after " + FormatCompact(prev_month));
      }
      prev_month = month.month_start;
      if (month.days.size() > 31) {
        flag(month_tag + ": " + std::to_string(month.days.size()) + " days");
      }
      Timestamp prev_day = -1;
      for (const DayNode& day : month.days) {
        const std::string day_tag = "day " + FormatCompact(day.day_start);
        if (day.day_start != TruncateToDay(day.day_start)) {
          flag(day_tag + ": start not on a day boundary");
        }
        if (TruncateToMonth(day.day_start) != month.month_start) {
          flag(day_tag + ": filed under the wrong " + month_tag);
        }
        if (day.day_start <= prev_day) {
          flag(day_tag + ": out of order after " + FormatCompact(prev_day));
        }
        prev_day = day.day_start;
        if (day.leaves.size() > static_cast<size_t>(kEpochsPerDay)) {
          flag(day_tag + ": " + std::to_string(day.leaves.size()) +
               " leaves");
        }
        if (day.sealed) {
          if (!day.leaves.empty()) {
            flag(day_tag + ": sealed but holds " +
                 std::to_string(day.leaves.size()) + " leaves");
          }
          if (day.day_start <= last_seen) {
            flag(day_tag + ": sealed day overlaps earlier nodes");
          }
          last_seen = day.day_start + 86400 - kEpochSeconds;
          if (walked_first < 0) walked_first = day.day_start;
          walked_newest = last_seen;
          continue;
        }
        for (const LeafNode& leaf : day.leaves) {
          const std::string leaf_tag =
              "leaf " + FormatCompact(leaf.epoch_start);
          if (leaf.epoch_start != TruncateToEpoch(leaf.epoch_start)) {
            flag(leaf_tag + ": start not on an epoch boundary");
          }
          if (TruncateToDay(leaf.epoch_start) != day.day_start) {
            flag(leaf_tag + ": filed under the wrong " + day_tag);
          }
          if (leaf.epoch_start <= last_seen) {
            flag(leaf_tag + ": out of order after " +
                 FormatCompact(last_seen));
          }
          last_seen = leaf.epoch_start;
          if (walked_first < 0) walked_first = leaf.epoch_start;
          walked_newest = leaf.epoch_start;
          ++walked_leaves;
          if (leaf.decayed) {
            ++walked_decayed;
            if (leaf.stored_bytes != 0) {
              flag(leaf_tag + ": decayed but still accounts " +
                   std::to_string(leaf.stored_bytes) + " stored bytes");
            }
          } else {
            walked_resident_bytes += leaf.stored_bytes;
          }
        }
      }
    }
  }

  // Counter agreement. Day-pruning (decay stage 2) removes nodes without
  // rewriting the historical leaf counters or `first_epoch_`, so those
  // checks relax to inequalities once any day was pruned.
  if (num_pruned_days_ == 0) {
    if (walked_leaves != num_leaves_) {
      flag("num_leaves() says " + std::to_string(num_leaves_) +
           " but the tree holds " + std::to_string(walked_leaves));
    }
    if (walked_decayed != num_decayed_) {
      flag("num_decayed() says " + std::to_string(num_decayed_) +
           " but the tree holds " + std::to_string(walked_decayed));
    }
    if (walked_first != first_epoch_) {
      flag("first_epoch() says " + FormatCompact(first_epoch_) +
           " but the oldest node starts " + FormatCompact(walked_first));
    }
  } else {
    if (walked_leaves > num_leaves_) {
      flag("tree holds more leaves than num_leaves() ever counted");
    }
    if (first_epoch_ >= 0 && walked_first >= 0 &&
        walked_first < first_epoch_) {
      flag("a node predates first_epoch()");
    }
  }
  if (walked_resident_bytes != resident_leaf_bytes_) {
    flag("resident_leaf_bytes() says " +
         std::to_string(resident_leaf_bytes_) + " but live leaves hold " +
         std::to_string(walked_resident_bytes));
  }
  if (walked_newest != newest_epoch_) {
    flag("newest_epoch() says " + FormatCompact(newest_epoch_) +
         " but the rightmost node ends " + FormatCompact(walked_newest));
  }
  return problems;
}

}  // namespace spate
