#ifndef SPATE_INDEX_SPATIAL_H_
#define SPATE_INDEX_SPATIAL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "telco/record.h"

namespace spate {

/// Axis-aligned spatial bounding box in region coordinates (meters) — the
/// `b` of a data-exploration query Q(a, b, w).
struct BoundingBox {
  double min_x = 0;
  double min_y = 0;
  double max_x = 0;
  double max_y = 0;

  bool Contains(double x, double y) const {
    return x >= min_x && x <= max_x && y >= min_y && y <= max_y;
  }

  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
};

/// Everything the index needs to know about one cell.
struct CellInfo {
  std::string id;
  double x = 0;
  double y = 0;
  std::string tech;
  std::string region;
  std::string antenna_id;
};

/// Directory of cells with a uniform-grid spatial index for bounding-box
/// lookups. Telco data is only cell-resolved (Section II-B: "we can not
/// talk about spatial data in the traditional sense"), so cell -> location
/// is the entire spatial layer; queries select the cells whose centers fall
/// inside `b`.
class CellDirectory {
 public:
  /// Builds from CELL table rows (schema of `CellSchema()`). Rows with
  /// malformed coordinates are skipped.
  explicit CellDirectory(const std::vector<Record>& cell_rows,
                         int grid_dim = 32);

  /// Number of cells indexed.
  size_t size() const { return cells_.size(); }

  /// Lookup by cell id; nullptr if unknown.
  const CellInfo* Find(const std::string& cell_id) const;

  /// Ids of all cells whose center lies inside `box`, sorted.
  std::vector<std::string> CellsInBox(const BoundingBox& box) const;

  /// Bounding box covering all cells.
  const BoundingBox& extent() const { return extent_; }

  /// All cells, in insertion order.
  const std::vector<CellInfo>& cells() const { return cells_; }

 private:
  int GridIndex(double x, double y) const;

  std::vector<CellInfo> cells_;
  std::unordered_map<std::string, size_t> by_id_;
  int grid_dim_;
  BoundingBox extent_;
  std::vector<std::vector<size_t>> grid_;  // grid cell -> cell indices
};

}  // namespace spate

#endif  // SPATE_INDEX_SPATIAL_H_
