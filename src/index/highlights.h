#ifndef SPATE_INDEX_HIGHLIGHTS_H_
#define SPATE_INDEX_HIGHLIGHTS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "telco/snapshot.h"

namespace spate {

/// Streaming aggregate of one numeric metric: count/sum/min/max (+ sum of
/// squares for variance). Mergeable, so summaries roll up day -> month ->
/// year exactly as the paper's highlights module does.
///
/// Thread-safety: plain value types with no synchronization, like all the
/// summary structs below. Built and merged on the ingestion thread; scan
/// workers only ever read them through `const` pointers into the index
/// (safe while nothing mutates — see DESIGN.md "Concurrency model").
/// `Merge` order affects the floating-point `sum`/`sum_sq` bits, which is
/// why roll-ups always merge in timestamp order rather than completion
/// order.
struct MetricAggregate {
  uint64_t count = 0;
  double sum = 0;
  double sum_sq = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    ++count;
    sum += v;
    sum_sq += v * v;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  void Merge(const MetricAggregate& other) {
    count += other.count;
    sum += other.sum;
    sum_sq += other.sum_sq;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }

  double mean() const { return count ? sum / count : 0.0; }
  double variance() const {
    if (count == 0) return 0.0;
    const double m = mean();
    const double v = sum_sq / count - m * m;
    return v > 0 ? v : 0.0;
  }
};

/// The numeric metrics materialized per cell in every index node — the
/// "long-standing queries of users (e.g., the drop-call counters, bandwidth
/// statistics)" of Section V-B.
enum class Metric : int {
  kDropCalls = 0,
  kCallAttempts,
  kThroughput,
  kRssi,
  kHandoverFails,
  kUpflux,
  kDownflux,
  kDuration,
};
inline constexpr int kNumMetrics = 8;
std::string_view MetricName(Metric metric);

/// Per-cell slice of a node summary.
struct CellStats {
  uint64_t cdr_rows = 0;
  uint64_t nms_rows = 0;
  uint64_t dropped_calls = 0;  // CDR rows with result == DROP
  MetricAggregate metrics[kNumMetrics];

  void Merge(const CellStats& other);
};

/// One extracted "highlight": an interesting event summary attached to an
/// index node (Section V-B). Categorical highlights carry the rare value;
/// numeric highlights carry the peaking point.
struct Highlight {
  std::string attribute;  // e.g. "result" or "drop_calls"
  std::string value;      // rare categorical value, or formatted peak
  std::string cell_id;    // empty for global (non-spatial) highlights
  double frequency = 0;   // relative occurrence (categorical) or z-score
};

/// Materialized aggregate cube for one temporal index node (epoch, day,
/// month or year): per-cell metric aggregates plus categorical histograms.
/// Mergeable bottom-up; serializable so non-leaf nodes can live on the DFS
/// and survive leaf decay.
///
/// Thread-safety: externally synchronized, like the index that owns it —
/// mutated only on the ingestion thread (`AddSnapshot`/`Merge`), read
/// concurrently by scan workers through `const` references once ingestion
/// for the window is quiescent. Holds no mutex, so it carries no rank in
/// docs/LOCK_ORDER.md and cannot participate in a lock cycle.
class SPATE_EXTERNALLY_SYNCHRONIZED NodeSummary {
 public:
  NodeSummary() = default;

  /// Folds one raw snapshot into the summary (used at the leaf level).
  void AddSnapshot(const Snapshot& snapshot);

  /// Merges a child summary (used when rolling up day/month/year).
  void Merge(const NodeSummary& other);

  uint64_t cdr_rows() const { return cdr_rows_; }
  uint64_t nms_rows() const { return nms_rows_; }
  const std::map<std::string, CellStats>& per_cell() const {
    return per_cell_;
  }
  const std::map<std::string, uint64_t>& call_type_counts() const {
    return call_type_counts_;
  }
  const std::map<std::string, uint64_t>& result_counts() const {
    return result_counts_;
  }

  /// Aggregate of `metric` across all cells.
  MetricAggregate TotalMetric(Metric metric) const;

  /// Extracts highlights with frequency threshold `theta`: categorical
  /// values whose relative frequency is below `theta` are highlights, and
  /// cells whose drop-call count peaks more than 2 standard deviations
  /// above the cross-cell mean are numeric highlights (Section V-B).
  std::vector<Highlight> ExtractHighlights(double theta) const;

  /// Returns a copy keeping only the cells for which `keep` is true (the
  /// spatial restriction of a query box). Row counts are recomputed from
  /// the surviving cells; the categorical histograms are not cell-resolved
  /// and are kept whole.
  NodeSummary FilterCells(
      const std::function<bool(const std::string&)>& keep) const;

  /// Compact binary serialization (stored on the DFS for non-leaf nodes).
  std::string Serialize() const;
  static Status Parse(Slice data, NodeSummary* summary);

  bool operator==(const NodeSummary& other) const;

 private:
  uint64_t cdr_rows_ = 0;
  uint64_t nms_rows_ = 0;
  std::map<std::string, CellStats> per_cell_;
  std::map<std::string, uint64_t> call_type_counts_;
  std::map<std::string, uint64_t> result_counts_;
};

}  // namespace spate

#endif  // SPATE_INDEX_HIGHLIGHTS_H_
