#include "analytics/features.h"

#include "common/clock.h"
#include "telco/schema.h"

namespace spate {

std::vector<double> CdrFeatures(const Record& row) {
  const Timestamp ts = ParseCompact(FieldAsString(row, kCdrTs));
  const double hour = ts >= 0 ? ToCivil(ts).hour : 0;
  return {
      static_cast<double>(FieldAsInt(row, kCdrDuration)),
      static_cast<double>(FieldAsInt(row, kCdrUpflux)),
      static_cast<double>(FieldAsInt(row, kCdrDownflux)),
      hour,
      FieldAsString(row, kCdrCallType) == "VOICE" ? 1.0 : 0.0,
  };
}

const std::vector<std::string>& CdrFeatureNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "duration", "upflux", "downflux", "hour", "is_voice"};
  return names;
}

std::vector<double> NmsFeatures(const Record& row) {
  return {
      static_cast<double>(FieldAsInt(row, kNmsDropCalls)),
      static_cast<double>(FieldAsInt(row, kNmsCallAttempts)),
      FieldAsDouble(row, kNmsAvgDuration),
      FieldAsDouble(row, kNmsThroughput),
      FieldAsDouble(row, kNmsRssi),
      static_cast<double>(FieldAsInt(row, kNmsHandoverFails)),
  };
}

const std::vector<std::string>& NmsFeatureNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "drop_calls", "call_attempts", "avg_duration",
      "throughput", "rssi",          "handover_fails"};
  return names;
}

void AppendSnapshotFeatures(const Snapshot& snapshot, Matrix* cdr_out,
                            Matrix* nms_out) {
  if (cdr_out != nullptr) {
    for (const Record& row : snapshot.cdr) {
      cdr_out->push_back(CdrFeatures(row));
    }
  }
  if (nms_out != nullptr) {
    for (const Record& row : snapshot.nms) {
      nms_out->push_back(NmsFeatures(row));
    }
  }
}

}  // namespace spate
