#include "analytics/kmeans.h"

#include <cmath>
#include <limits>

#include "common/mutex.h"
#include "common/random.h"

namespace spate {
namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double d = 0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
Matrix SeedCentroids(const Matrix& points, int k, Rng& rng) {
  Matrix centroids;
  centroids.push_back(points[rng.Uniform(points.size())]);
  std::vector<double> dist2(points.size(),
                            std::numeric_limits<double>::infinity());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0;
    for (size_t i = 0; i < points.size(); ++i) {
      dist2[i] = std::min(dist2[i],
                          SquaredDistance(points[i], centroids.back()));
      total += dist2[i];
    }
    if (total <= 0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids.push_back(points[rng.Uniform(points.size())]);
      continue;
    }
    double target = rng.NextDouble() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      target -= dist2[i];
      if (target <= 0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

Result<KMeansResult> KMeans(const Matrix& points,
                            const KMeansOptions& options, ThreadPool* pool) {
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (points.size() < static_cast<size_t>(options.k)) {
    return Status::InvalidArgument("fewer points than clusters");
  }
  const size_t dims = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dims) {
      return Status::InvalidArgument("ragged feature matrix");
    }
  }

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = SeedCentroids(points, options.k, rng);
  result.assignments.assign(points.size(), 0);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step (parallel).
    struct Accum {
      Matrix sums;
      std::vector<uint64_t> counts;
      double inertia = 0;
    };
    Accum total{Matrix(options.k, std::vector<double>(dims, 0)),
                std::vector<uint64_t>(options.k, 0), 0};
    auto assign_range = [&](size_t begin, size_t end, Accum* acc) {
      for (size_t i = begin; i < end; ++i) {
        double best = std::numeric_limits<double>::infinity();
        int best_c = 0;
        for (int c = 0; c < options.k; ++c) {
          const double d = SquaredDistance(points[i], result.centroids[c]);
          if (d < best) {
            best = d;
            best_c = c;
          }
        }
        result.assignments[i] = best_c;
        acc->inertia += best;
        acc->counts[best_c]++;
        for (size_t d = 0; d < dims; ++d) {
          acc->sums[best_c][d] += points[i][d];
        }
      }
    };
    if (pool != nullptr && points.size() > 2048) {
      Mutex mu{"Analytics.kmeans"};
      pool->ParallelFor(points.size(), [&](size_t begin, size_t end) {
        Accum local{Matrix(options.k, std::vector<double>(dims, 0)),
                    std::vector<uint64_t>(options.k, 0), 0};
        assign_range(begin, end, &local);
        MutexLock lock(&mu);
        total.inertia += local.inertia;
        for (int c = 0; c < options.k; ++c) {
          total.counts[c] += local.counts[c];
          for (size_t d = 0; d < dims; ++d) {
            total.sums[c][d] += local.sums[c][d];
          }
        }
      });
    } else {
      assign_range(0, points.size(), &total);
    }
    result.inertia = total.inertia;

    // Update step.
    for (int c = 0; c < options.k; ++c) {
      if (total.counts[c] == 0) continue;  // keep empty cluster's centroid
      for (size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = total.sums[c][d] / total.counts[c];
      }
    }

    if (prev_inertia - result.inertia <=
        options.tolerance * std::max(1.0, prev_inertia)) {
      break;
    }
    prev_inertia = result.inertia;
  }
  return result;
}

}  // namespace spate
