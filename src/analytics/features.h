#ifndef SPATE_ANALYTICS_FEATURES_H_
#define SPATE_ANALYTICS_FEATURES_H_

#include <string>
#include <vector>

#include "analytics/stats.h"
#include "telco/snapshot.h"

namespace spate {

/// Numeric feature extraction from raw telco records — the bridge between
/// the storage/scan layer and the ML kernels (T6-T8 operate on CDR and NMS
/// numeric columns).

/// CDR features: [duration, upflux, downflux, hour-of-day, is_voice].
std::vector<double> CdrFeatures(const Record& row);
const std::vector<std::string>& CdrFeatureNames();

/// NMS features: [drop_calls, call_attempts, avg_duration, throughput,
/// rssi, handover_fails].
std::vector<double> NmsFeatures(const Record& row);
const std::vector<std::string>& NmsFeatureNames();

/// Appends the feature rows of every record in `snapshot` to `*cdr_out` /
/// `*nms_out` (either may be null to skip that table).
void AppendSnapshotFeatures(const Snapshot& snapshot, Matrix* cdr_out,
                            Matrix* nms_out);

}  // namespace spate

#endif  // SPATE_ANALYTICS_FEATURES_H_
