#ifndef SPATE_ANALYTICS_KMEANS_H_
#define SPATE_ANALYTICS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "analytics/stats.h"

namespace spate {

/// k-means configuration (task T7's Spark KMeans stand-in).
struct KMeansOptions {
  int k = 4;
  int max_iterations = 20;
  /// Relative inertia improvement below which iteration stops early.
  double tolerance = 1e-4;
  uint64_t seed = 42;
};

struct KMeansResult {
  Matrix centroids;                   // k x dims
  std::vector<int> assignments;       // one per input point
  double inertia = 0;                 // sum of squared distances
  int iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding. Deterministic for a fixed
/// seed; assignment steps run chunk-parallel on `pool` when provided.
/// Fails with InvalidArgument when there are fewer points than clusters.
Result<KMeansResult> KMeans(const Matrix& points, const KMeansOptions& options,
                            ThreadPool* pool = nullptr);

}  // namespace spate

#endif  // SPATE_ANALYTICS_KMEANS_H_
