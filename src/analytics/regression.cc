#include "analytics/regression.h"

#include <cmath>

#include "common/mutex.h"

namespace spate {
namespace {

/// Solves the symmetric positive-definite system A x = b in place via
/// Gaussian elimination with partial pivoting. Returns false if singular.
bool SolveLinearSystem(Matrix& a, std::vector<double>& b) {
  const size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    // Pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    // Eliminate.
    for (size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      if (f == 0) continue;
      for (size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  for (size_t col = n; col-- > 0;) {
    for (size_t c = col + 1; c < n; ++c) b[col] -= a[col][c] * b[c];
    b[col] /= a[col][col];
  }
  return true;
}

}  // namespace

Result<RegressionResult> LinearRegression(const Matrix& features,
                                          const std::vector<double>& targets,
                                          const RegressionOptions& options,
                                          ThreadPool* pool) {
  if (features.empty() || features.size() != targets.size()) {
    return Status::InvalidArgument("features/targets size mismatch");
  }
  const size_t dims = features[0].size();
  for (const auto& row : features) {
    if (row.size() != dims) {
      return Status::InvalidArgument("ragged feature matrix");
    }
  }
  // Augmented design: [x, 1] so the intercept falls out of the same solve.
  const size_t n = dims + 1;
  Matrix gram(n, std::vector<double>(n, 0));
  std::vector<double> xty(n, 0);

  auto accumulate = [&](size_t begin, size_t end, Matrix* g,
                        std::vector<double>* v) {
    for (size_t i = begin; i < end; ++i) {
      const auto& x = features[i];
      const double y = targets[i];
      for (size_t r = 0; r < dims; ++r) {
        for (size_t c = r; c < dims; ++c) (*g)[r][c] += x[r] * x[c];
        (*g)[r][dims] += x[r];
        (*v)[r] += x[r] * y;
      }
      (*g)[dims][dims] += 1;
      (*v)[dims] += y;
    }
  };
  if (pool != nullptr && features.size() > 2048) {
    Mutex mu{"Analytics.regression"};
    pool->ParallelFor(features.size(), [&](size_t begin, size_t end) {
      Matrix g(n, std::vector<double>(n, 0));
      std::vector<double> v(n, 0);
      accumulate(begin, end, &g, &v);
      MutexLock lock(&mu);
      for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < n; ++c) gram[r][c] += g[r][c];
        xty[r] += v[r];
      }
    });
  } else {
    accumulate(0, features.size(), &gram, &xty);
  }
  // Mirror the upper triangle and add the ridge term (not on intercept).
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = r + 1; c < n; ++c) gram[c][r] = gram[r][c];
  }
  for (size_t d = 0; d < dims; ++d) {
    gram[d][d] += options.l2 * features.size();
  }

  std::vector<double> solution = xty;
  if (!SolveLinearSystem(gram, solution)) {
    return Status::InvalidArgument("singular design matrix");
  }

  RegressionResult result;
  result.weights.assign(solution.begin(), solution.begin() + dims);
  result.intercept = solution[dims];

  // Training error metrics.
  double y_mean = 0;
  for (double y : targets) y_mean += y;
  y_mean /= targets.size();
  double ss_res = 0, ss_tot = 0;
  for (size_t i = 0; i < features.size(); ++i) {
    const double err = targets[i] - result.Predict(features[i]);
    ss_res += err * err;
    ss_tot += (targets[i] - y_mean) * (targets[i] - y_mean);
  }
  result.mse = ss_res / features.size();
  result.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
  return result;
}

}  // namespace spate
