#ifndef SPATE_ANALYTICS_REGRESSION_H_
#define SPATE_ANALYTICS_REGRESSION_H_

#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "analytics/stats.h"

namespace spate {

/// Linear regression configuration (task T8's Spark LinearRegression
/// stand-in). Solved in closed form via ridge-regularized normal equations.
struct RegressionOptions {
  /// L2 (ridge) regularization strength; keeps the Gram matrix invertible.
  double l2 = 1e-8;
};

struct RegressionResult {
  std::vector<double> weights;  // one per feature
  double intercept = 0;
  double mse = 0;  // training mean squared error
  double r2 = 0;   // coefficient of determination on training data

  double Predict(const std::vector<double>& features) const {
    double y = intercept;
    const size_t n = std::min(features.size(), weights.size());
    for (size_t i = 0; i < n; ++i) y += weights[i] * features[i];
    return y;
  }
};

/// Fits y ~ X. Gram-matrix accumulation runs chunk-parallel on `pool`.
/// Fails with InvalidArgument on empty/ragged input or |X| != |y|.
Result<RegressionResult> LinearRegression(const Matrix& features,
                                          const std::vector<double>& targets,
                                          const RegressionOptions& options,
                                          ThreadPool* pool = nullptr);

}  // namespace spate

#endif  // SPATE_ANALYTICS_REGRESSION_H_
