#ifndef SPATE_ANALYTICS_STATS_H_
#define SPATE_ANALYTICS_STATS_H_

#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace spate {

/// Dense row-major numeric dataset handed to the analytics kernels
/// (extracted from CDR/NMS records by `ExtractFeatures` in features.h).
using Matrix = std::vector<std::vector<double>>;

/// Per-column multivariate statistics: the output of task T6, mirroring
/// Spark's Statistics.colStats (max, min, mean, variance, number of
/// non-zeros and total count).
struct ColumnStat {
  std::string name;
  uint64_t count = 0;
  uint64_t num_nonzeros = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double variance = 0;
};

/// Computes column-wise statistics over `rows`. Ragged rows are rejected
/// implicitly: columns beyond a row's size read as 0. Runs chunk-parallel
/// on `pool` when provided.
std::vector<ColumnStat> ComputeColumnStats(
    const Matrix& rows, const std::vector<std::string>& names,
    ThreadPool* pool = nullptr);

}  // namespace spate

#endif  // SPATE_ANALYTICS_STATS_H_
