#include "analytics/heavy_hitters.h"

#include <algorithm>

namespace spate {

HeavyHitters::HeavyHitters(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void HeavyHitters::Add(const std::string& key, uint64_t weight) {
  stream_weight_ += weight;
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    it->second.count += weight;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(key, Entry{key, weight, 0});
    return;
  }
  // Space-Saving eviction: replace the minimum counter; the newcomer
  // inherits its count as the over-count bound.
  auto min_it = counters_.begin();
  for (auto cur = counters_.begin(); cur != counters_.end(); ++cur) {
    if (cur->second.count < min_it->second.count) min_it = cur;
  }
  const uint64_t floor = min_it->second.count;
  counters_.erase(min_it);
  counters_.emplace(key, Entry{key, floor + weight, floor});
}

std::vector<HeavyHitters::Entry> HeavyHitters::Top(size_t k) const {
  std::vector<Entry> entries;
  entries.reserve(counters_.size());
  for (const auto& [key, entry] : counters_) entries.push_back(entry);
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.count != b.count ? a.count > b.count : a.key < b.key;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

uint64_t HeavyHitters::Estimate(const std::string& key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second.count;
}

}  // namespace spate
