#ifndef SPATE_ANALYTICS_HEAVY_HITTERS_H_
#define SPATE_ANALYTICS_HEAVY_HITTERS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace spate {

/// Space-Saving heavy-hitters sketch (Metwally et al.): tracks the top-k
/// most frequent string keys of a stream in O(capacity) memory with
/// deterministic over-count bounds.
///
/// SPATE uses it for the interactive "top" views the paper's introduction
/// motivates (precise marketing, user-experience evaluation): top callers,
/// busiest cells, chattiest devices — computed in one pass over a scanned
/// window without materializing per-key counters for the whole key space.
class HeavyHitters {
 public:
  /// `capacity` is the number of tracked counters (>= 1). Any key whose
  /// true frequency exceeds stream_length / capacity is guaranteed to be
  /// present in the sketch.
  explicit HeavyHitters(size_t capacity);

  /// Feeds one occurrence of `key` (optionally weighted).
  void Add(const std::string& key, uint64_t weight = 1);

  struct Entry {
    std::string key;
    uint64_t count = 0;  // estimated frequency (upper bound)
    uint64_t error = 0;  // max over-count of `count`
  };

  /// The tracked entries, most frequent first, at most `k` of them.
  std::vector<Entry> Top(size_t k) const;

  /// Estimated frequency of `key` (0 if not tracked).
  uint64_t Estimate(const std::string& key) const;

  /// Total weight fed so far.
  uint64_t stream_weight() const { return stream_weight_; }
  size_t tracked() const { return counters_.size(); }

 private:
  size_t capacity_;
  std::unordered_map<std::string, Entry> counters_;
  uint64_t stream_weight_ = 0;
};

}  // namespace spate

#endif  // SPATE_ANALYTICS_HEAVY_HITTERS_H_
