#ifndef SPATE_ANALYTICS_HISTOGRAM_H_
#define SPATE_ANALYTICS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spate {

/// Fixed-range equi-width histogram with saturating under/overflow buckets.
///
/// Backs the SPATE-UI's distribution charts (e.g. the RSSi heatmap
/// statistics of Section VI-B): cheap to update per record, mergeable
/// across windows, and able to answer approximate quantiles with bucket
/// resolution.
class Histogram {
 public:
  /// Buckets of width (hi - lo) / buckets over [lo, hi); values below `lo`
  /// land in the underflow bucket, values >= `hi` in the overflow bucket.
  Histogram(double lo, double hi, size_t buckets);

  void Add(double value, uint64_t weight = 1);

  /// Merges another histogram with identical geometry (checked).
  /// Returns false (and does nothing) on geometry mismatch.
  bool Merge(const Histogram& other);

  uint64_t total() const { return total_; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  double bucket_lo(size_t i) const { return lo_ + i * width_; }

  /// Approximate q-quantile (0 <= q <= 1) by linear interpolation inside
  /// the bucket containing the target rank. Returns lo/hi bounds for
  /// mass in the saturating buckets.
  double Quantile(double q) const;

  /// Mean of the recorded values, approximated at bucket-center
  /// resolution (under/overflow contribute their boundary values).
  double ApproxMean() const;

  /// Renders a compact ASCII bar chart (one line per bucket), for the CLI.
  std::string ToAscii(int max_width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

}  // namespace spate

#endif  // SPATE_ANALYTICS_HISTOGRAM_H_
