#include "analytics/stats.h"

#include <algorithm>
#include <limits>

#include "common/mutex.h"

namespace spate {
namespace {

struct Partial {
  uint64_t count = 0;
  std::vector<uint64_t> nnz;
  std::vector<double> sum, sum_sq;
  std::vector<double> min, max;

  explicit Partial(size_t cols)
      : nnz(cols, 0),
        sum(cols, 0),
        sum_sq(cols, 0),
        min(cols, std::numeric_limits<double>::infinity()),
        max(cols, -std::numeric_limits<double>::infinity()) {}

  void Add(const std::vector<double>& row) {
    ++count;
    for (size_t c = 0; c < nnz.size(); ++c) {
      const double v = c < row.size() ? row[c] : 0.0;
      if (v != 0.0) ++nnz[c];
      sum[c] += v;
      sum_sq[c] += v * v;
      min[c] = std::min(min[c], v);
      max[c] = std::max(max[c], v);
    }
  }

  void Merge(const Partial& other) {
    count += other.count;
    for (size_t c = 0; c < nnz.size(); ++c) {
      nnz[c] += other.nnz[c];
      sum[c] += other.sum[c];
      sum_sq[c] += other.sum_sq[c];
      min[c] = std::min(min[c], other.min[c]);
      max[c] = std::max(max[c], other.max[c]);
    }
  }
};

}  // namespace

std::vector<ColumnStat> ComputeColumnStats(
    const Matrix& rows, const std::vector<std::string>& names,
    ThreadPool* pool) {
  const size_t cols = names.size();
  Partial total(cols);

  if (pool != nullptr && rows.size() > 1024) {
    Mutex mu{"Analytics.stats"};
    pool->ParallelFor(rows.size(), [&](size_t begin, size_t end) {
      Partial local(cols);
      for (size_t i = begin; i < end; ++i) local.Add(rows[i]);
      MutexLock lock(&mu);
      total.Merge(local);
    });
  } else {
    for (const auto& row : rows) total.Add(row);
  }

  std::vector<ColumnStat> out(cols);
  for (size_t c = 0; c < cols; ++c) {
    ColumnStat& s = out[c];
    s.name = names[c];
    s.count = total.count;
    s.num_nonzeros = total.nnz[c];
    if (total.count == 0) continue;
    s.min = total.min[c];
    s.max = total.max[c];
    s.mean = total.sum[c] / total.count;
    // Sample variance (n-1 denominator), matching Spark's colStats.
    if (total.count > 1) {
      const double num =
          total.sum_sq[c] - total.count * s.mean * s.mean;
      s.variance = std::max(0.0, num / (total.count - 1));
    }
  }
  return out;
}

}  // namespace spate
