#include "analytics/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace spate {

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi) {
  if (buckets == 0) buckets = 1;
  if (hi_ <= lo_) hi_ = lo_ + 1.0;
  width_ = (hi_ - lo_) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

void Histogram::Add(double value, uint64_t weight) {
  total_ += weight;
  if (value < lo_) {
    underflow_ += weight;
    return;
  }
  if (value >= hi_) {
    overflow_ += weight;
    return;
  }
  size_t bucket = static_cast<size_t>((value - lo_) / width_);
  if (bucket >= counts_.size()) bucket = counts_.size() - 1;  // fp edge
  counts_[bucket] += weight;
}

bool Histogram::Merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size()) {
    return false;
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  return true;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double seen = static_cast<double>(underflow_);
  if (target <= seen) return lo_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = seen + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - seen) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    seen = next;
  }
  return hi_;
}

double Histogram::ApproxMean() const {
  if (total_ == 0) return 0.0;
  double sum = static_cast<double>(underflow_) * lo_ +
               static_cast<double>(overflow_) * hi_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    sum += static_cast<double>(counts_[i]) * (bucket_lo(i) + width_ / 2);
  }
  return sum / static_cast<double>(total_);
}

std::string Histogram::ToAscii(int max_width) const {
  uint64_t peak = 1;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const int bars = static_cast<int>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        max_width);
    snprintf(line, sizeof(line), "[%10.2f) %-*.*s %llu\n", bucket_lo(i),
             max_width, bars,
             "##################################################"
             "##################################################",
             static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace spate
