#include "dfs/dfs.h"

#include <algorithm>

#include "common/check.h"
#include "common/crc32.h"
#include "common/failpoint.h"

namespace spate {

namespace {

/// Clamps the options into a valid configuration before any member uses
/// them (the fault injector is constructed from the *normalized* node
/// count — it carries a mutex now, so it cannot be re-assigned afterwards).
DfsOptions NormalizeDfsOptions(DfsOptions options) {
  if (options.num_datanodes < 1) options.num_datanodes = 1;
  if (options.replication < 1) options.replication = 1;
  if (options.replication > options.num_datanodes) {
    options.replication = options.num_datanodes;
  }
  if (options.block_size == 0) options.block_size = 64ull << 20;
  return options;
}

}  // namespace

DistributedFileSystem::DistributedFileSystem(DfsOptions options)
    : options_(NormalizeDfsOptions(options)),
      fault_(options_.fault, options_.num_datanodes) {
  datanode_bytes_.assign(options_.num_datanodes, 0);
}

std::vector<int> DistributedFileSystem::PickLiveNodes(
    size_t count, const std::vector<int>& exclude) const {
  // Least-loaded placement, HDFS-balancer style, over live nodes only.
  std::vector<int> nodes;
  nodes.reserve(static_cast<size_t>(options_.num_datanodes));
  for (int i = 0; i < options_.num_datanodes; ++i) {
    if (fault_.IsDown(i)) continue;
    if (std::find(exclude.begin(), exclude.end(), i) != exclude.end()) {
      continue;
    }
    nodes.push_back(i);
  }
  std::sort(nodes.begin(), nodes.end(), [this](int a, int b) {
    if (datanode_bytes_[a] != datanode_bytes_[b]) {
      return datanode_bytes_[a] < datanode_bytes_[b];
    }
    return a < b;
  });
  if (nodes.size() > count) nodes.resize(count);
  return nodes;
}

Status DistributedFileSystem::WriteFile(const std::string& path, Slice data) {
  MutexLock lock(&mu_);
  // Before any namenode mutation: an injected write failure must leave no
  // partial file entry or replica behind.
  SPATE_FAILPOINT("dfs.write_file");
  if (files_.count(path)) {
    return Status::AlreadyExists("dfs file exists: " + path);
  }
  if (fault_.NumLive() == 0) {
    return Status::Unavailable("dfs: no live datanode to write " + path);
  }
  FileEntry entry;
  entry.size = data.size();
  size_t offset = 0;
  do {
    const size_t len = std::min<size_t>(options_.block_size,
                                        data.size() - offset);
    Block block;
    block.size = len;
    block.crc = Crc32(Slice(data.data() + offset, len));
    // Place on live nodes; fewer live nodes than the replication target
    // yields an under-replicated block that RepairScan() tops up later.
    const std::vector<int> nodes =
        PickLiveNodes(static_cast<size_t>(options_.replication), {});
    for (int node : nodes) {
      Replica replica;
      replica.datanode = node;
      replica.data.assign(data.data() + offset, len);
      datanode_bytes_[node] += len;
      ++stats_.blocks_written;
      stats_.bytes_written += len;
      stats_.simulated_write_seconds +=
          options_.disk.WriteSeconds(len) * fault_.SlowdownFor(node);
      block.replicas.push_back(std::move(replica));
    }
    const uint64_t id = next_block_id_++;
    blocks_.emplace(id, std::move(block));
    entry.block_ids.push_back(id);
    offset += len;
  } while (offset < data.size());
  files_.emplace(path, std::move(entry));
  return Status::OK();
}

Status DistributedFileSystem::ReadBlockLocked(const std::string& path,
                                              const Block& block,
                                              std::string* out) {
  SPATE_FAILPOINT("dfs.read_block");
  bool maybe_transient = false;  // a copy we could not inspect might be good
  size_t failed_replicas = 0;
  for (const Replica& replica : block.replicas) {
    if (fault_.IsDown(replica.datanode)) {
      ++stats_.dead_node_skips;
      ++failed_replicas;
      maybe_transient = true;
      continue;
    }
    // Bounded retry against injected transient errors; backoff doubles.
    bool got = false;
    for (int attempt = 0; attempt < fault_.options().max_read_attempts;
         ++attempt) {
      stats_.simulated_read_seconds +=
          options_.disk.ReadSeconds(replica.data.size()) *
          fault_.SlowdownFor(replica.datanode);
      if (fault_.NextReadAttemptFails()) {
        ++stats_.transient_read_errors;
        stats_.simulated_read_seconds += fault_.BackoffSeconds(attempt);
        continue;
      }
      got = true;
      break;
    }
    if (!got) {
      ++failed_replicas;
      maybe_transient = true;
      continue;
    }
    if (replica.data.size() != block.size ||
        Crc32(Slice(replica.data)) != block.crc) {
      // Silent corruption caught by the checksum: fail over.
      ++stats_.crc_read_failures;
      ++failed_replicas;
      continue;
    }
    stats_.read_failovers += failed_replicas;
    ++stats_.blocks_read;
    stats_.bytes_read += replica.data.size();
    out->append(replica.data);
    return Status::OK();
  }
  stats_.read_failovers += failed_replicas;
  ++stats_.failed_block_reads;
  if (maybe_transient) {
    return Status::Unavailable("dfs: no readable replica for " + path +
                               " (datanode down or transient errors)");
  }
  return Status::Corruption("dfs: every replica corrupt for " + path);
}

Result<std::string> DistributedFileSystem::ReadFile(const std::string& path) {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("dfs file not found: " + path);
  }
  std::string out;
  out.reserve(it->second.size);
  for (uint64_t id : it->second.block_ids) {
    auto bit = blocks_.find(id);
    if (bit == blocks_.end()) {
      return Status::Corruption("dfs: missing block for " + path);
    }
    SPATE_RETURN_IF_ERROR(ReadBlockLocked(path, bit->second, &out));
  }
  return out;
}

Status DistributedFileSystem::DeleteFile(const std::string& path) {
  MutexLock lock(&mu_);
  // Before any mutation: deletion (the decay eviction path) is idempotent,
  // so an injected failure here must be retryable with no partial erase.
  SPATE_FAILPOINT("dfs.delete_file");
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("dfs file not found: " + path);
  }
  for (uint64_t id : it->second.block_ids) {
    auto bit = blocks_.find(id);
    if (bit != blocks_.end()) {
      for (const Replica& replica : bit->second.replicas) {
        datanode_bytes_[replica.datanode] -= replica.data.size();
      }
      blocks_.erase(bit);
    }
  }
  files_.erase(it);
  return Status::OK();
}

bool DistributedFileSystem::Exists(const std::string& path) const {
  MutexLock lock(&mu_);
  return files_.count(path) != 0;
}

Result<uint64_t> DistributedFileSystem::FileSize(
    const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("dfs file not found: " + path);
  }
  return it->second.size;
}

std::vector<std::string> DistributedFileSystem::ListFiles(
    const std::string& prefix) const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

uint64_t DistributedFileSystem::TotalLogicalBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [path, entry] : files_) total += entry.size;
  return total;
}

uint64_t DistributedFileSystem::TotalPhysicalBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (uint64_t b : datanode_bytes_) total += b;
  return total;
}

uint64_t DistributedFileSystem::TotalBlocks() const {
  MutexLock lock(&mu_);
  return blocks_.size();
}

std::vector<uint64_t> DistributedFileSystem::DatanodeUsage() const {
  MutexLock lock(&mu_);
  return datanode_bytes_;
}

Status DistributedFileSystem::KillDatanode(int node) {
  MutexLock lock(&mu_);
  if (!fault_.ValidNode(node)) {
    return Status::InvalidArgument("dfs: no such datanode");
  }
  fault_.KillDatanode(node);
  return Status::OK();
}

Status DistributedFileSystem::ReviveDatanode(int node) {
  MutexLock lock(&mu_);
  if (!fault_.ValidNode(node)) {
    return Status::InvalidArgument("dfs: no such datanode");
  }
  fault_.ReviveDatanode(node);
  return Status::OK();
}

bool DistributedFileSystem::DatanodeIsDown(int node) const {
  MutexLock lock(&mu_);
  return fault_.ValidNode(node) && fault_.IsDown(node);
}

int DistributedFileSystem::NumLiveDatanodes() const {
  MutexLock lock(&mu_);
  return fault_.NumLive();
}

Status DistributedFileSystem::SetDatanodeSlowdown(int node, double factor) {
  MutexLock lock(&mu_);
  if (!fault_.ValidNode(node)) {
    return Status::InvalidArgument("dfs: no such datanode");
  }
  fault_.SetSlowdown(node, factor);
  return Status::OK();
}

Result<CorruptionEvent> DistributedFileSystem::CorruptRandomReplica(
    uint64_t seed) {
  MutexLock lock(&mu_);
  // Non-empty blocks only (an empty replica has no byte to flip).
  std::vector<uint64_t> candidates;
  candidates.reserve(blocks_.size());
  for (const auto& [id, block] : blocks_) {
    if (block.size > 0 && !block.replicas.empty()) candidates.push_back(id);
  }
  if (candidates.empty()) {
    return Status::NotFound("dfs: no non-empty block to corrupt");
  }
  Rng rng(seed);
  Block& block = blocks_.at(candidates[rng.Uniform(candidates.size())]);
  Replica& replica = block.replicas[rng.Uniform(block.replicas.size())];
  CorruptionEvent event;
  event.block_id = candidates[0];  // overwritten below; keep compiler happy
  for (const auto& [id, b] : blocks_) {
    if (&b == &block) event.block_id = id;
  }
  event.datanode = replica.datanode;
  event.byte_offset = rng.Uniform(replica.data.size());
  replica.data[event.byte_offset] ^= 0x01;
  return event;
}

Status DistributedFileSystem::CorruptReplica(const std::string& path,
                                             size_t block_index,
                                             size_t replica_index,
                                             uint64_t byte_offset) {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("dfs file not found: " + path);
  }
  if (block_index >= it->second.block_ids.size()) {
    return Status::OutOfRange("dfs: block index out of range");
  }
  auto bit = blocks_.find(it->second.block_ids[block_index]);
  if (bit == blocks_.end()) {
    return Status::Corruption("dfs: missing block for " + path);
  }
  Block& block = bit->second;
  if (replica_index >= block.replicas.size()) {
    return Status::OutOfRange("dfs: replica index out of range");
  }
  std::string& data = block.replicas[replica_index].data;
  if (data.empty()) {
    return Status::OutOfRange("dfs: empty replica has no byte to flip");
  }
  data[byte_offset % data.size()] ^= 0x01;
  return Status::OK();
}

RepairReport DistributedFileSystem::RepairScan() {
  MutexLock lock(&mu_);
  RepairReport report;
  for (auto& [id, block] : blocks_) {
    ++report.blocks_scanned;
    // Classify replicas. Copies on dead nodes cannot be inspected; they are
    // replaced (and only then dropped) so redundancy never shrinks further.
    std::vector<size_t> good_live, bad_live, on_dead;
    for (size_t i = 0; i < block.replicas.size(); ++i) {
      const Replica& replica = block.replicas[i];
      if (fault_.IsDown(replica.datanode)) {
        on_dead.push_back(i);
      } else if (replica.data.size() == block.size &&
                 Crc32(Slice(replica.data)) == block.crc) {
        good_live.push_back(i);
      } else {
        bad_live.push_back(i);
      }
    }
    if (good_live.empty()) {
      if (!on_dead.empty()) {
        ++report.unavailable_blocks;
      } else {
        ++report.unrecoverable_blocks;
      }
      continue;  // no good source copy to repair from
    }
    const bool needs_work =
        !bad_live.empty() || !on_dead.empty() ||
        block.replicas.size() < static_cast<size_t>(options_.replication);
    if (!needs_work) continue;

    // Injected re-replication failure (the source read died mid-repair):
    // the block is left untouched for the next scan — counted unavailable,
    // never half-repaired.
    if (SPATE_FAILPOINT_HIT("dfs.replicate")) {
      ++report.unavailable_blocks;
      continue;
    }

    // One source read per block needing work.
    const size_t src = good_live[0];
    const int src_node = block.replicas[src].datanode;
    stats_.simulated_read_seconds +=
        options_.disk.ReadSeconds(block.size) * fault_.SlowdownFor(src_node);
    stats_.bytes_read += block.size;
    ++stats_.blocks_read;
    const std::string source = block.replicas[src].data;

    // 1. Rewrite corrupt live replicas in place.
    for (size_t i : bad_live) {
      Replica& replica = block.replicas[i];
      datanode_bytes_[replica.datanode] -= replica.data.size();
      replica.data = source;
      datanode_bytes_[replica.datanode] += replica.data.size();
      stats_.simulated_write_seconds +=
          options_.disk.WriteSeconds(block.size) *
          fault_.SlowdownFor(replica.datanode);
      stats_.repair_bytes_copied += block.size;
      ++stats_.blocks_repaired;
      ++report.replicas_repaired;
      report.bytes_copied += block.size;
    }

    // 2. Restore the replication target on live nodes: place replacements
    // for dead-node copies and for under-replicated writes, then drop one
    // dead-node copy per successful replacement.
    std::vector<int> holders;
    for (const Replica& replica : block.replicas) {
      holders.push_back(replica.datanode);
    }
    const size_t live_count = block.replicas.size() - on_dead.size();
    const size_t target = static_cast<size_t>(options_.replication);
    size_t deficit = live_count < target ? target - live_count : 0;
    std::vector<size_t> dropped;
    while (deficit > 0) {
      const std::vector<int> picked = PickLiveNodes(1, holders);
      if (picked.empty()) break;  // not enough distinct live nodes
      Replica replica;
      replica.datanode = picked[0];
      replica.data = source;
      datanode_bytes_[picked[0]] += block.size;
      stats_.simulated_write_seconds +=
          options_.disk.WriteSeconds(block.size) *
          fault_.SlowdownFor(picked[0]);
      stats_.bytes_written += block.size;
      ++stats_.blocks_written;
      stats_.repair_bytes_copied += block.size;
      ++stats_.blocks_rereplicated;
      ++report.replicas_rereplicated;
      report.bytes_copied += block.size;
      holders.push_back(picked[0]);
      block.replicas.push_back(std::move(replica));
      if (!on_dead.empty()) {
        dropped.push_back(on_dead.back());
        on_dead.pop_back();
      }
      --deficit;
    }
    // Drop the replaced dead-node copies (highest indices first so the
    // remaining indices stay valid).
    std::sort(dropped.rbegin(), dropped.rend());
    for (size_t i : dropped) {
      datanode_bytes_[block.replicas[i].datanode] -=
          block.replicas[i].data.size();
      block.replicas.erase(block.replicas.begin() +
                           static_cast<std::ptrdiff_t>(i));
    }
#ifndef NDEBUG
    // Post-repair seam invariant: a block we repaired from a good live copy
    // must leave with no corrupt replica on a live node (dead-node copies
    // are only replaced once a substitute exists, so they may linger).
    for (const Replica& replica : block.replicas) {
      if (fault_.IsDown(replica.datanode)) continue;
      SPATE_DCHECK_EQ(replica.data.size(), block.size);
      SPATE_DCHECK_EQ(Crc32(Slice(replica.data)), block.crc);
    }
#endif
  }
  return report;
}

std::vector<BlockInspection> DistributedFileSystem::InspectBlocks() const {
  MutexLock lock(&mu_);
  std::vector<BlockInspection> out;
  out.reserve(blocks_.size());
  for (const auto& [path, entry] : files_) {
    for (size_t index = 0; index < entry.block_ids.size(); ++index) {
      auto bit = blocks_.find(entry.block_ids[index]);
      BlockInspection info;
      info.block_id = entry.block_ids[index];
      info.path = path;
      info.block_index = index;
      info.replication_target =
          std::min(options_.replication, options_.num_datanodes);
      if (bit == blocks_.end()) {
        // Dangling block id: namenode metadata names a block that holds no
        // replicas at all; fsck classifies it as a replication violation.
        out.push_back(std::move(info));
        continue;
      }
      const Block& block = bit->second;
      info.size = block.size;
      info.crc = block.crc;
      info.replicas.reserve(block.replicas.size());
      for (const Replica& replica : block.replicas) {
        ReplicaInspection r;
        r.datanode = replica.datanode;
        r.length = replica.data.size();
        r.healthy = replica.data.size() == block.size &&
                    Crc32(Slice(replica.data)) == block.crc;
        r.node_down = fault_.IsDown(replica.datanode);
        info.replicas.push_back(r);
      }
      out.push_back(std::move(info));
    }
  }
  return out;
}

Result<std::string> DistributedFileSystem::InspectFile(
    const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("inspect: no such file " + path);
  }
  std::string out;
  out.reserve(static_cast<size_t>(it->second.size));
  for (uint64_t block_id : it->second.block_ids) {
    auto bit = blocks_.find(block_id);
    if (bit == blocks_.end()) {
      return Status::Corruption("inspect: dangling block id in " + path);
    }
    const Block& block = bit->second;
    const Replica* healthy = nullptr;
    for (const Replica& replica : block.replicas) {
      if (replica.data.size() == block.size &&
          Crc32(Slice(replica.data)) == block.crc) {
        healthy = &replica;
        break;
      }
    }
    if (healthy == nullptr) {
      return Status::Corruption("inspect: no healthy replica of block " +
                                std::to_string(block_id) + " of " + path);
    }
    out.append(healthy->data);
  }
  return out;
}

IoStats DistributedFileSystem::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void DistributedFileSystem::ResetStats() {
  MutexLock lock(&mu_);
  stats_.Reset();
}

}  // namespace spate
