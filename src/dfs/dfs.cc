#include "dfs/dfs.h"

#include <algorithm>

#include "common/crc32.h"

namespace spate {

DistributedFileSystem::DistributedFileSystem(DfsOptions options)
    : options_(options) {
  if (options_.num_datanodes < 1) options_.num_datanodes = 1;
  if (options_.replication < 1) options_.replication = 1;
  if (options_.replication > options_.num_datanodes) {
    options_.replication = options_.num_datanodes;
  }
  if (options_.block_size == 0) options_.block_size = 64ull << 20;
  datanode_bytes_.assign(options_.num_datanodes, 0);
}

std::vector<int> DistributedFileSystem::PlaceReplicas() {
  // Least-loaded placement, HDFS-balancer style.
  std::vector<int> nodes(options_.num_datanodes);
  for (int i = 0; i < options_.num_datanodes; ++i) nodes[i] = i;
  std::sort(nodes.begin(), nodes.end(), [this](int a, int b) {
    return datanode_bytes_[a] < datanode_bytes_[b];
  });
  nodes.resize(options_.replication);
  return nodes;
}

Status DistributedFileSystem::WriteFile(const std::string& path, Slice data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(path)) {
    return Status::AlreadyExists("dfs file exists: " + path);
  }
  FileEntry entry;
  entry.size = data.size();
  size_t offset = 0;
  do {
    const size_t len = std::min<size_t>(options_.block_size,
                                        data.size() - offset);
    Block block;
    block.data.assign(data.data() + offset, len);
    block.crc = Crc32(Slice(block.data));
    block.replicas = PlaceReplicas();
    for (int node : block.replicas) {
      datanode_bytes_[node] += len;
      ++stats_.blocks_written;
      stats_.bytes_written += len;
      stats_.simulated_write_seconds += options_.disk.WriteSeconds(len);
    }
    const uint64_t id = next_block_id_++;
    blocks_.emplace(id, std::move(block));
    entry.block_ids.push_back(id);
    offset += len;
  } while (offset < data.size());
  files_.emplace(path, std::move(entry));
  return Status::OK();
}

Result<std::string> DistributedFileSystem::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("dfs file not found: " + path);
  }
  std::string out;
  out.reserve(it->second.size);
  for (uint64_t id : it->second.block_ids) {
    auto bit = blocks_.find(id);
    if (bit == blocks_.end()) {
      return Status::Corruption("dfs: missing block for " + path);
    }
    const Block& block = bit->second;
    if (Crc32(Slice(block.data)) != block.crc) {
      return Status::Corruption("dfs: block checksum mismatch for " + path);
    }
    ++stats_.blocks_read;
    stats_.bytes_read += block.data.size();
    stats_.simulated_read_seconds +=
        options_.disk.ReadSeconds(block.data.size());
    out += block.data;
  }
  return out;
}

Status DistributedFileSystem::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("dfs file not found: " + path);
  }
  for (uint64_t id : it->second.block_ids) {
    auto bit = blocks_.find(id);
    if (bit != blocks_.end()) {
      for (int node : bit->second.replicas) {
        datanode_bytes_[node] -= bit->second.data.size();
      }
      blocks_.erase(bit);
    }
  }
  files_.erase(it);
  return Status::OK();
}

bool DistributedFileSystem::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) != 0;
}

Result<uint64_t> DistributedFileSystem::FileSize(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("dfs file not found: " + path);
  }
  return it->second.size;
}

std::vector<std::string> DistributedFileSystem::ListFiles(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

uint64_t DistributedFileSystem::TotalLogicalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, entry] : files_) total += entry.size;
  return total;
}

uint64_t DistributedFileSystem::TotalPhysicalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (uint64_t b : datanode_bytes_) total += b;
  return total;
}

uint64_t DistributedFileSystem::TotalBlocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

std::vector<uint64_t> DistributedFileSystem::DatanodeUsage() const {
  std::lock_guard<std::mutex> lock(mu_);
  return datanode_bytes_;
}

IoStats DistributedFileSystem::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void DistributedFileSystem::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Reset();
}

}  // namespace spate
