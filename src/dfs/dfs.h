#ifndef SPATE_DFS_DFS_H_
#define SPATE_DFS_DFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "dfs/disk_model.h"
#include "dfs/fault_injector.h"

namespace spate {

/// Configuration of the in-process replicated block file system (the HDFS
/// v2.5.2 stand-in: 64 MB blocks, replication 3, 4 datanodes — the paper's
/// testbed parameters).
struct DfsOptions {
  uint64_t block_size = 64ull << 20;
  int replication = 3;
  int num_datanodes = 4;
  DiskModel disk;
  FaultOptions fault;
};

/// One injected corruption event (for test assertions / logging).
struct CorruptionEvent {
  uint64_t block_id = 0;
  int datanode = -1;
  uint64_t byte_offset = 0;
};

/// Deep-inspection view of one replica of one block, for `spate::check`'s
/// fsck (replica bytes verified against the block's write-time CRC and
/// length without charging simulated I/O — fsck is an auditor, not a
/// workload).
struct ReplicaInspection {
  int datanode = -1;
  uint64_t length = 0;
  /// Replica bytes match the block's logical length and CRC-32.
  bool healthy = false;
  /// The holding datanode is currently dead (bytes inspected regardless;
  /// a production fsck reaches disks the namenode cannot).
  bool node_down = false;
};

/// Deep-inspection view of one stored block (pre-replication).
struct BlockInspection {
  uint64_t block_id = 0;
  /// Owning file path and position of this block within it.
  std::string path;
  size_t block_index = 0;
  uint64_t size = 0;  // logical length recorded at write time
  uint32_t crc = 0;   // CRC-32 recorded at write time
  /// Replication target in force when the block was written (the options'
  /// replication clamped to the datanode count).
  int replication_target = 0;
  std::vector<ReplicaInspection> replicas;
};

/// Outcome of one `RepairScan()` pass over the block inventory.
struct RepairReport {
  uint64_t blocks_scanned = 0;
  /// Corrupt replicas on live nodes rewritten in place from a good copy.
  uint64_t replicas_repaired = 0;
  /// Replacement replicas placed on live nodes for copies stranded on dead
  /// datanodes or missing after an under-replicated write.
  uint64_t replicas_rereplicated = 0;
  uint64_t bytes_copied = 0;
  /// Blocks with no live good replica but surviving copies on down nodes
  /// (repairable once those nodes revive).
  uint64_t unavailable_blocks = 0;
  /// Blocks with no good replica anywhere (every copy corrupt).
  uint64_t unrecoverable_blocks = 0;
};

/// In-process replicated block file system.
///
/// Files are immutable once written (HDFS semantics): split into fixed-size
/// blocks, each replica stored as a physically separate copy on one of
/// `replication` distinct datanodes. Every block carries a CRC-32 computed at
/// write time; reads verify the chosen replica's bytes against it and fail
/// over to the next replica on mismatch. All operations also charge
/// deterministic *simulated* disk time to `stats()` per the `DiskModel`.
///
/// Failure model (all faults deterministic, driven by `FaultOptions` and the
/// imperative fault API below):
///  - datanodes can be killed/revived; reads skip dead nodes, writes place
///    replicas on live nodes only (under-replicating if too few are live);
///  - replica bytes can be bit-flipped (silent corruption); CRC verification
///    catches it and the read fails over;
///  - reads can fail transiently at a seeded rate, retried per replica with
///    bounded exponential backoff before failing over;
///  - `RepairScan()` plays the namenode's re-replication role: it rewrites
///    corrupt live replicas and re-replicates copies lost to dead nodes,
///    restoring the replication target from any surviving good copy.
///
/// Thread-safety: fully thread-safe. Every public operation (reads, writes,
/// fault controls, stats) takes the single internal mutex, so concurrent
/// scan workers may call `ReadFile` freely while another thread writes or
/// injects faults; each call is atomic with respect to the others. Two
/// consequences worth knowing when fanning out over this class:
///  - the mutex serializes I/O, so the DFS itself adds no read parallelism —
///    concurrency wins come from overlapping *decompression* with I/O, not
///    from overlapping reads (see DESIGN.md "Concurrency model");
///  - `stats()` accumulates simulated seconds in arrival order; with
///    concurrent readers that order — and therefore the floating-point sum —
///    can differ run to run even though per-call charges are deterministic.
///    Byte/operation counters are exact regardless of interleaving.
class DistributedFileSystem {
 public:
  explicit DistributedFileSystem(DfsOptions options = DfsOptions());

  DistributedFileSystem(const DistributedFileSystem&) = delete;
  DistributedFileSystem& operator=(const DistributedFileSystem&) = delete;

  /// Writes an immutable file. Returns AlreadyExists if `path` is taken and
  /// Unavailable if no datanode is live.
  Status WriteFile(const std::string& path, Slice data);

  /// Reads a whole file with per-block replica failover. Each block is
  /// served by the first replica that is on a live datanode, survives its
  /// bounded transient retries and passes CRC verification. Returns
  /// Unavailable if some unread copy might still exist (dead node or
  /// transient exhaustion), Corruption if every reachable replica is
  /// corrupt.
  Result<std::string> ReadFile(const std::string& path);

  /// Removes a file and frees its blocks. NotFound if absent.
  Status DeleteFile(const std::string& path);

  bool Exists(const std::string& path) const;

  /// Logical size of one file. NotFound if absent.
  Result<uint64_t> FileSize(const std::string& path) const;

  /// Paths with the given prefix, lexicographically sorted.
  std::vector<std::string> ListFiles(const std::string& prefix) const;

  /// Sum of logical file sizes (what `du` on the namenode would report,
  /// pre-replication). This is the "Space" metric of Figs. 8/10.
  uint64_t TotalLogicalBytes() const;

  /// Bytes on disk across all datanodes (every physical replica copy).
  uint64_t TotalPhysicalBytes() const;

  /// Number of stored blocks (pre-replication).
  uint64_t TotalBlocks() const;

  /// Physical bytes per datanode, for placement-balance inspection.
  std::vector<uint64_t> DatanodeUsage() const;

  // --- Fault injection (deterministic; see FaultOptions for the seeded
  // transient-error stream). ---

  /// Marks a datanode unreachable. Its replicas survive and serve again
  /// after `ReviveDatanode` (a transient outage) unless `RepairScan()`
  /// replaced them first. InvalidArgument on a bad node id.
  Status KillDatanode(int node);
  Status ReviveDatanode(int node);
  bool DatanodeIsDown(int node) const;
  int NumLiveDatanodes() const;

  /// Scales one datanode's simulated disk time (a degraded disk / noisy
  /// neighbour). Factor 1 restores nominal speed.
  Status SetDatanodeSlowdown(int node, double factor);

  /// Flips one byte in one replica of one stored block, all chosen
  /// deterministically from `seed` (silent corruption; only CRC-verified
  /// reads notice). NotFound when no non-empty block exists.
  Result<CorruptionEvent> CorruptRandomReplica(uint64_t seed);

  /// Flips the byte at `byte_offset` of replica `replica_index` of block
  /// number `block_index` of `path` (targeted corruption for tests).
  Status CorruptReplica(const std::string& path, size_t block_index,
                        size_t replica_index, uint64_t byte_offset);

  /// Namenode-style integrity pass: for every block, rewrites corrupt
  /// replicas on live nodes from a surviving good copy and re-replicates
  /// copies stranded on dead nodes (or missing after an under-replicated
  /// write) onto live nodes, restoring the replication target where
  /// possible. Counters land in the returned report and in `stats()`.
  RepairReport RepairScan();

  /// Deep verify for `spate::check::Fsck`: every replica of every block,
  /// CRC-checked against the write-time metadata, in (path, block_index)
  /// order. Unlike reads, inspection sees replicas on dead datanodes too
  /// and charges no simulated I/O or stats.
  std::vector<BlockInspection> InspectBlocks() const;

  /// Reassembles a file from any healthy replica of each block — including
  /// replicas on dead datanodes — without charging simulated I/O, retries
  /// or stats (the auditor's read, used by fsck to verify stored blobs
  /// behind a degraded cluster). NotFound if the path is absent, Corruption
  /// if some block has no healthy replica anywhere.
  Result<std::string> InspectFile(const std::string& path) const;

  const DfsOptions& options() const { return options_; }
  IoStats stats() const;
  void ResetStats();

 private:
  /// One physical copy of a block on one datanode.
  struct Replica {
    int datanode = -1;
    std::string data;
  };
  struct Block {
    uint64_t size = 0;  // logical length (every healthy replica's length)
    uint32_t crc = 0;   // CRC-32 of the logical bytes at write time
    std::vector<Replica> replicas;
  };
  struct FileEntry {
    std::vector<uint64_t> block_ids;
    uint64_t size = 0;
  };

  /// Picks up to `count` distinct *live* datanodes not in `exclude`,
  /// least-loaded first.
  std::vector<int> PickLiveNodes(size_t count,
                                 const std::vector<int>& exclude) const
      REQUIRES(mu_);

  /// Reads one block with failover; appends the bytes to `out`.
  Status ReadBlockLocked(const std::string& path, const Block& block,
                         std::string* out) REQUIRES(mu_);

  DfsOptions options_;
  /// Rank "Dfs.mu" (docs/LOCK_ORDER.md): storage sits below the cache/
  /// scheduling tiers; the fault injector's internal lock and the
  /// completion latch are the only locks acquired under it.
  mutable Mutex mu_ ACQUIRED_AFTER("ResultCache.mu", "ThreadPool.mu")
      ACQUIRED_BEFORE("FaultInjector.mu", "CountdownLatch.mu") {"Dfs.mu"};
  std::map<std::string, FileEntry> files_ GUARDED_BY(mu_);
  std::map<uint64_t, Block> blocks_ GUARDED_BY(mu_);
  std::vector<uint64_t> datanode_bytes_ GUARDED_BY(mu_);
  uint64_t next_block_id_ GUARDED_BY(mu_) = 1;
  IoStats stats_ GUARDED_BY(mu_);
  /// Internally synchronized behind its own rank "FaultInjector.mu" (see
  /// fault_injector.h), but every DFS access still happens under `mu_` —
  /// the analysis keeps enforcing that, and the nesting is the lock
  /// hierarchy's always-exercised `Dfs.mu -> FaultInjector.mu` edge.
  FaultInjector fault_ GUARDED_BY(mu_);
};

}  // namespace spate

#endif  // SPATE_DFS_DFS_H_
