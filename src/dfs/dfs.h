#ifndef SPATE_DFS_DFS_H_
#define SPATE_DFS_DFS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "dfs/disk_model.h"

namespace spate {

/// Configuration of the in-process replicated block file system (the HDFS
/// v2.5.2 stand-in: 64 MB blocks, replication 3, 4 datanodes — the paper's
/// testbed parameters).
struct DfsOptions {
  uint64_t block_size = 64ull << 20;
  int replication = 3;
  int num_datanodes = 4;
  DiskModel disk;
};

/// In-process replicated block file system.
///
/// Files are immutable once written (HDFS semantics): split into fixed-size
/// blocks, each placed on `replication` distinct datanodes (logical copies;
/// bytes are stored once and replication is accounted, not duplicated, in
/// memory). Every block carries a CRC-32 that is verified on read. All
/// operations also charge deterministic *simulated* disk time to `stats()`
/// per the `DiskModel`.
///
/// Thread-safe.
class DistributedFileSystem {
 public:
  explicit DistributedFileSystem(DfsOptions options = DfsOptions());

  DistributedFileSystem(const DistributedFileSystem&) = delete;
  DistributedFileSystem& operator=(const DistributedFileSystem&) = delete;

  /// Writes an immutable file. Returns AlreadyExists if `path` is taken.
  Status WriteFile(const std::string& path, Slice data);

  /// Reads a whole file; verifies every block checksum.
  Result<std::string> ReadFile(const std::string& path);

  /// Removes a file and frees its blocks. NotFound if absent.
  Status DeleteFile(const std::string& path);

  bool Exists(const std::string& path) const;

  /// Logical size of one file. NotFound if absent.
  Result<uint64_t> FileSize(const std::string& path) const;

  /// Paths with the given prefix, lexicographically sorted.
  std::vector<std::string> ListFiles(const std::string& prefix) const;

  /// Sum of logical file sizes (what `du` on the namenode would report,
  /// pre-replication). This is the "Space" metric of Figs. 8/10.
  uint64_t TotalLogicalBytes() const;

  /// Bytes on disk across all datanodes (logical x replication).
  uint64_t TotalPhysicalBytes() const;

  /// Number of stored blocks (pre-replication).
  uint64_t TotalBlocks() const;

  /// Physical bytes per datanode, for placement-balance inspection.
  std::vector<uint64_t> DatanodeUsage() const;

  const DfsOptions& options() const { return options_; }
  IoStats stats() const;
  void ResetStats();

 private:
  struct Block {
    std::string data;
    uint32_t crc = 0;
    std::vector<int> replicas;  // datanode ids
  };
  struct FileEntry {
    std::vector<uint64_t> block_ids;
    uint64_t size = 0;
  };

  /// Picks `replication` distinct datanodes, least-loaded first.
  std::vector<int> PlaceReplicas();

  DfsOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, FileEntry> files_;
  std::map<uint64_t, Block> blocks_;
  std::vector<uint64_t> datanode_bytes_;
  uint64_t next_block_id_ = 1;
  IoStats stats_;
};

}  // namespace spate

#endif  // SPATE_DFS_DFS_H_
