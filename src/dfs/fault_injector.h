#ifndef SPATE_DFS_FAULT_INJECTOR_H_
#define SPATE_DFS_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"

namespace spate {

/// Configuration of the deterministic fault injector attached to a
/// `DistributedFileSystem`. All stochastic faults draw from one explicitly
/// seeded `Rng`, so a fault schedule replays bit-identically under the same
/// seed (the same property the trace generator gives workloads).
struct FaultOptions {
  /// Seed of the transient-error stream.
  uint64_t seed = 0;
  /// Probability that any single replica read attempt fails transiently
  /// (a flaky NIC / busy datanode). 0 disables transient errors.
  double transient_read_error_rate = 0.0;
  /// Read attempts per replica before failing over to the next one
  /// (bounded retry; must be >= 1).
  int max_read_attempts = 3;
  /// Simulated backoff before the first retry; doubles per retry
  /// (exponential backoff, charged to `IoStats::simulated_read_seconds`).
  double retry_backoff_ms = 1.0;
};

/// Deterministic fault state of a DFS cluster: per-datanode liveness and
/// slowdown factors plus a seeded transient-error stream.
///
/// Thread-safety: fully thread-safe. Every accessor takes the internal
/// annotated mutex (rank "FaultInjector.mu", acquired under "Dfs.mu" — the
/// DFS consults fault state while holding its own lock, which is the one
/// always-exercised nesting edge in the lock hierarchy; see
/// docs/LOCK_ORDER.md). `options()` needs no lock: options are immutable
/// after construction.
///
/// Determinism caveat under concurrency: the transient-error stream is one
/// shared seeded RNG consumed per read *attempt*, so which attempt observes
/// which draw depends on the order readers reach the DFS. With concurrent
/// scan workers that order is scheduler-dependent, making transient faults
/// replayable only for serial workloads. *State-based* faults — kills,
/// revivals, slowdowns, corrupted replica bytes — are plain state with no
/// stream to race on and stay deterministic at any worker count; tests that
/// assert serial/parallel equivalence use only those (see
/// tests/core/parallel_pipeline_test.cc).
class FaultInjector {
 public:
  FaultInjector(FaultOptions options, int num_datanodes)
      : options_(options),
        down_(static_cast<size_t>(num_datanodes), false),
        slowdown_(static_cast<size_t>(num_datanodes), 1.0),
        rng_(options.seed) {
    if (options_.max_read_attempts < 1) options_.max_read_attempts = 1;
    if (options_.transient_read_error_rate < 0) {
      options_.transient_read_error_rate = 0;
    }
  }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  bool ValidNode(int node) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return node >= 0 && node < static_cast<int>(down_.size());
  }

  void KillDatanode(int node) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    down_[static_cast<size_t>(node)] = true;
  }
  void ReviveDatanode(int node) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    down_[static_cast<size_t>(node)] = false;
  }
  bool IsDown(int node) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return down_[static_cast<size_t>(node)];
  }

  int NumLive() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    int live = 0;
    for (bool d : down_) live += d ? 0 : 1;
    return live;
  }

  /// Multiplies the datanode's simulated disk time (>= 0; 1 = nominal).
  void SetSlowdown(int node, double factor) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    slowdown_[static_cast<size_t>(node)] = factor < 0 ? 0 : factor;
  }
  double SlowdownFor(int node) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return slowdown_[static_cast<size_t>(node)];
  }

  /// Draws the next value of the seeded transient-error stream: true if the
  /// current replica read attempt should fail.
  bool NextReadAttemptFails() EXCLUDES(mu_) {
    if (options_.transient_read_error_rate <= 0) return false;
    MutexLock lock(&mu_);
    return rng_.Bernoulli(options_.transient_read_error_rate);
  }

  /// Simulated backoff before retry number `retry` (0-based), in seconds.
  /// Pure function of the immutable options — no lock.
  double BackoffSeconds(int retry) const {
    return options_.retry_backoff_ms * 1e-3 *
           static_cast<double>(1ull << (retry < 62 ? retry : 62));
  }

  const FaultOptions& options() const { return options_; }

 private:
  /// Immutable after construction (the constructor clamps, nothing writes
  /// later), so reads need no lock.
  FaultOptions options_;
  /// Rank "FaultInjector.mu" (docs/LOCK_ORDER.md): innermost storage-side
  /// lock, only ever acquired under "Dfs.mu" (or standalone in tests).
  mutable Mutex mu_ ACQUIRED_AFTER("Dfs.mu") {"FaultInjector.mu"};
  std::vector<bool> down_ GUARDED_BY(mu_);
  std::vector<double> slowdown_ GUARDED_BY(mu_);
  Rng rng_ GUARDED_BY(mu_);
};

}  // namespace spate

#endif  // SPATE_DFS_FAULT_INJECTOR_H_
