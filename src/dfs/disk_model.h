#ifndef SPATE_DFS_DISK_MODEL_H_
#define SPATE_DFS_DISK_MODEL_H_

#include <cstdint>

namespace spate {

/// Cost model of one datanode disk, calibrated to the paper's testbed
/// (slow 7.2K-RPM RAID-5 SAS disks behind VMFS): a fixed seek penalty per
/// block access plus sequential-transfer throughput.
///
/// SPATE's headline effect — compression shifting the bottleneck from
/// storage/network I/O to CPU — only manifests on slow disks, so the DFS
/// *accounts* simulated disk seconds deterministically instead of depending
/// on the host's (likely NVMe) hardware. Benchmarks report
/// real CPU time + simulated I/O time.
struct DiskModel {
  double seek_ms = 8.0;
  double write_mbps = 100.0;
  double read_mbps = 120.0;

  double WriteSeconds(uint64_t bytes) const {
    return seek_ms / 1e3 + static_cast<double>(bytes) / (write_mbps * 1e6);
  }
  double ReadSeconds(uint64_t bytes) const {
    return seek_ms / 1e3 + static_cast<double>(bytes) / (read_mbps * 1e6);
  }
};

/// Cumulative I/O accounting for one file system instance.
struct IoStats {
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t blocks_written = 0;  // counts each replica
  uint64_t blocks_read = 0;
  double simulated_write_seconds = 0;
  double simulated_read_seconds = 0;

  double simulated_io_seconds() const {
    return simulated_write_seconds + simulated_read_seconds;
  }

  void Reset() { *this = IoStats(); }
};

}  // namespace spate

#endif  // SPATE_DFS_DISK_MODEL_H_
