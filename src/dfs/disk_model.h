#ifndef SPATE_DFS_DISK_MODEL_H_
#define SPATE_DFS_DISK_MODEL_H_

#include <cstdint>

namespace spate {

/// Cost model of one datanode disk, calibrated to the paper's testbed
/// (slow 7.2K-RPM RAID-5 SAS disks behind VMFS): a fixed seek penalty per
/// block access plus sequential-transfer throughput.
///
/// SPATE's headline effect — compression shifting the bottleneck from
/// storage/network I/O to CPU — only manifests on slow disks, so the DFS
/// *accounts* simulated disk seconds deterministically instead of depending
/// on the host's (likely NVMe) hardware. Benchmarks report
/// real CPU time + simulated I/O time.
struct DiskModel {
  double seek_ms = 8.0;
  double write_mbps = 100.0;
  double read_mbps = 120.0;

  double WriteSeconds(uint64_t bytes) const {
    return seek_ms / 1e3 + static_cast<double>(bytes) / (write_mbps * 1e6);
  }
  double ReadSeconds(uint64_t bytes) const {
    return seek_ms / 1e3 + static_cast<double>(bytes) / (read_mbps * 1e6);
  }
};

/// Cumulative I/O accounting for one file system instance.
struct IoStats {
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t blocks_written = 0;  // counts each replica
  uint64_t blocks_read = 0;
  double simulated_write_seconds = 0;
  double simulated_read_seconds = 0;

  // --- Failure / recovery accounting (fault-injected operation). ---
  /// Reads that had to move past a replica (dead node, bad CRC or exhausted
  /// transient retries) before succeeding or giving up.
  uint64_t read_failovers = 0;
  /// Replica read attempts skipped because the datanode was down.
  uint64_t dead_node_skips = 0;
  /// Replica reads that failed checksum verification.
  uint64_t crc_read_failures = 0;
  /// Injected transient read errors observed (each consumes one retry).
  uint64_t transient_read_errors = 0;
  /// Block reads for which *no* replica could be read.
  uint64_t failed_block_reads = 0;
  /// Corrupt replicas rewritten in place by `RepairScan()`.
  uint64_t blocks_repaired = 0;
  /// Replicas re-created on live nodes by `RepairScan()` to restore the
  /// replication target after datanode loss.
  uint64_t blocks_rereplicated = 0;
  /// Bytes copied between datanodes by `RepairScan()`.
  uint64_t repair_bytes_copied = 0;

  double simulated_io_seconds() const {
    return simulated_write_seconds + simulated_read_seconds;
  }

  void Reset() { *this = IoStats(); }
};

}  // namespace spate

#endif  // SPATE_DFS_DISK_MODEL_H_
