#include "check/fsck.h"

#include <map>
#include <sstream>
#include <utility>

#include "common/clock.h"
#include "common/lockdep.h"
#include "compress/chunked.h"
#include "compress/columnar.h"
#include "core/columnar_leaf.h"
#include "core/spate_framework.h"
#include "dfs/dfs.h"
#include "index/temporal_index.h"
#include "telco/schema.h"
#include "telco/snapshot.h"

namespace spate {
namespace check {

void FsckReport::Add(std::string_view invariant, std::string object,
                     std::string detail) {
  violations.push_back(FsckViolation{std::string(invariant),
                                     std::move(object), std::move(detail)});
}

std::vector<const FsckViolation*> FsckReport::ViolationsFor(
    std::string_view invariant) const {
  std::vector<const FsckViolation*> out;
  for (const FsckViolation& v : violations) {
    if (v.invariant == invariant) out.push_back(&v);
  }
  return out;
}

std::string FsckReport::ToString() const {
  std::ostringstream os;
  os << "fsck: " << blocks_checked << " blocks, " << replicas_checked
     << " replicas, " << files_checked << " files, " << leaves_checked
     << " leaves, " << containers_checked << " containers, "
     << summaries_checked << " summaries";
  if (lock_sites_checked > 0) {
    os << ", " << lock_sites_checked << " lock sites";
  }
  os << " checked\n";
  if (clean()) {
    os << "fsck: clean (0 violations)\n";
    return os.str();
  }
  // Per-invariant tally first (the operator's one-glance classification),
  // then the itemized list.
  std::map<std::string, size_t> tally;
  for (const FsckViolation& v : violations) ++tally[v.invariant];
  os << "fsck: " << violations.size() << " violation(s):\n";
  for (const auto& [invariant, count] : tally) {
    os << "  [" << invariant << "] x" << count << "\n";
  }
  for (const FsckViolation& v : violations) {
    os << "  " << v.invariant << ": " << v.object << ": " << v.detail
       << "\n";
  }
  return os.str();
}

void VerifyDfs(const DistributedFileSystem& dfs, FsckReport* report) {
  const std::vector<BlockInspection> blocks = dfs.InspectBlocks();
  std::map<std::string, uint64_t> file_block_bytes;
  for (const BlockInspection& block : blocks) {
    ++report->blocks_checked;
    const std::string object = "block " + std::to_string(block.block_id) +
                               " of " + block.path;
    file_block_bytes[block.path] += block.size;
    if (block.replicas.empty()) {
      // A block id the namenode metadata names but no datanode holds.
      report->Add(kDfsMetadata, object, "dangling block id (no replicas)");
      report->Add(kReplicationFactor, object,
                  "0 healthy replicas, target " +
                      std::to_string(block.replication_target));
      continue;
    }
    int healthy = 0;
    for (const ReplicaInspection& replica : block.replicas) {
      ++report->replicas_checked;
      if (replica.healthy) {
        ++healthy;
        continue;
      }
      std::string detail =
          replica.length != block.size
              ? "replica length " + std::to_string(replica.length) +
                    " != block size " + std::to_string(block.size)
              : "replica bytes fail the write-time CRC";
      detail += " (datanode " + std::to_string(replica.datanode) +
                (replica.node_down ? ", down)" : ")");
      report->Add(kReplicaIntegrity, object, std::move(detail));
    }
    if (healthy < block.replication_target) {
      report->Add(kReplicationFactor, object,
                  std::to_string(healthy) + " healthy replicas, target " +
                      std::to_string(block.replication_target));
    }
  }
  // Namenode size bookkeeping: a file's logical size must equal the sum of
  // its blocks' logical sizes.
  for (const auto& [path, block_bytes] : file_block_bytes) {
    auto size = dfs.FileSize(path);
    if (!size.ok()) {
      report->Add(kDfsMetadata, path, "blocks without a file entry");
      continue;
    }
    if (*size != block_bytes) {
      report->Add(kDfsMetadata, path,
                  "file size " + std::to_string(*size) +
                      " != block sum " + std::to_string(block_bytes));
    }
  }
}

FsckReport VerifyDfs(const DistributedFileSystem& dfs) {
  FsckReport report;
  VerifyDfs(dfs, &report);
  return report;
}

void AppendLockdep(FsckReport* report) {
  if (!lockdep::Enabled()) return;
  report->lock_sites_checked += lockdep::Stats().size();
  const lockdep::LockdepReport lockdep_report = lockdep::Report();
  for (const lockdep::LockdepViolation& v : lockdep_report.violations) {
    // Preserve the detector's own stable id ("lock-cycle" /
    // "lock-same-rank") in the detail; fsck classifies everything
    // concurrency-related under the one `lock-order` invariant.
    report->Add(kLockOrder, v.object, "[" + v.violation + "] " + v.detail);
  }
}

}  // namespace check

namespace {

/// True when `leaf` should already be decayed under the index's own
/// `decayed_until()` horizon (the decay-monotonicity invariant).
bool MustBeDecayed(const LeafNode& leaf, Timestamp decayed_until) {
  return leaf.epoch_start + kEpochSeconds <= decayed_until;
}

/// Cross-checks the columnar projected-read path on one leaf: a narrow
/// projected decode (one CDR metric + one NMS metric, the shape T1-T5
/// issue) must equal the reference restriction of the full decode.
Status CheckColumnarProjection(Slice blob, const Snapshot& full) {
  const std::vector<std::string> attrs = {"upflux", "rssi"};
  const TableProjection cdr =
      ScanProjection(CdrSchema(), attrs, kCdrTs, kCdrCellId);
  const TableProjection nms =
      ScanProjection(NmsSchema(), attrs, kNmsTs, kNmsCellId);
  Snapshot projected;
  SPATE_RETURN_IF_ERROR(DecodeColumnarLeaf(blob, cdr, nms,
                                           /*wanted_cells=*/nullptr,
                                           &projected,
                                           /*bytes_decoded=*/nullptr));
  const Snapshot expected = RestrictSnapshot(full, cdr, nms, nullptr);
  if (projected.epoch_start != expected.epoch_start ||
      projected.cdr != expected.cdr || projected.nms != expected.nms) {
    return Status::Corruption(
        "projected decode disagrees with the restricted full decode");
  }
  return Status::OK();
}

}  // namespace

check::FsckReport SpateFramework::Fsck() const {
  using check::FsckReport;
  FsckReport report;

  // --- Storage layer: replicas, replication factor, namenode metadata. ---
  check::VerifyDfs(*dfs_, &report);

  // --- Index layer: structural shape. ---
  for (const std::string& problem : index_.ShapeProblems()) {
    report.Add(check::kIndexShape, "index", problem);
  }

  // --- Compression + highlight layers: walk every leaf in time order,
  // verify blob framing and decodability, recompute live-leaf summaries
  // from the decoded bytes, and check decay monotonicity. The walk keeps
  // the previous epoch's text so delta leaves decode against their chain
  // exactly as a scan would. ---
  const Timestamp decayed_until = index_.decayed_until();
  std::string prev_text;
  Timestamp prev_epoch = -1;
  for (const YearNode& year : index_.years()) {
    for (const MonthNode& month : year.months) {
      for (const DayNode& day : month.days) {
        if (day.sealed) {
          prev_epoch = -1;
          prev_text.clear();
          continue;
        }
        for (const LeafNode& leaf : day.leaves) {
          ++report.leaves_checked;
          const std::string object =
              "leaf " + FormatCompact(leaf.epoch_start);
          if (!leaf.decayed && MustBeDecayed(leaf, decayed_until)) {
            report.Add(check::kDecayOrder, object,
                       "live leaf behind the decay horizon " +
                           FormatCompact(decayed_until));
          }
          if (leaf.decayed) {
            // Raw data gone by design; only the (retained) summary serves
            // this epoch. A decayed leaf breaks any delta chain through it.
            prev_epoch = -1;
            prev_text.clear();
            continue;
          }

          auto blob = dfs_->InspectFile(leaf.dfs_path);
          if (!blob.ok()) {
            report.Add(check::kEnvelopeDecode, object,
                       "unreadable blob: " + blob.status().ToString());
            prev_epoch = -1;
            prev_text.clear();
            continue;
          }
          ++report.files_checked;
          if (leaf.stored_bytes != blob->size()) {
            report.Add(check::kDfsMetadata, object,
                       "index says " + std::to_string(leaf.stored_bytes) +
                           " stored bytes, DFS holds " +
                           std::to_string(blob->size()));
          }
          const bool columnar = !leaf.delta && IsColumnarBlob(*blob);
          if (IsChunkedBlob(*blob) || columnar) ++report.containers_checked;
          Status framing = columnar ? VerifyColumnarFraming(*blob)
                                    : VerifyChunkedFraming(*blob);
          if (!framing.ok()) {
            report.Add(check::kContainerFraming, object,
                       framing.ToString());
          }

          std::string text;
          Status decode;
          Snapshot snapshot;
          bool have_snapshot = false;
          if (leaf.delta) {
            if (prev_epoch != leaf.epoch_start - kEpochSeconds) {
              decode = Status::Corruption(
                  "delta chain broken: predecessor epoch missing");
            } else {
              const Codec* codec = CodecRegistry::GetById(
                  static_cast<uint8_t>((*blob)[0]));
              decode = codec == nullptr
                           ? Status::Corruption("unknown delta codec id")
                           : codec->DecompressWithDictionary(prev_text,
                                                             *blob, &text);
            }
          } else if (columnar) {
            // Columnar leaf: reassemble the full snapshot from its chunks,
            // then cross-check the projected-read path against the
            // reference restriction — a chunk that decodes but lies (or a
            // reader bug) surfaces here, not just hard decode failures.
            const TableProjection all;
            decode = DecodeColumnarLeaf(*blob, all, all,
                                        /*wanted_cells=*/nullptr, &snapshot,
                                        /*bytes_decoded=*/nullptr);
            if (decode.ok()) {
              have_snapshot = true;
              text = SerializeSnapshot(snapshot);
              Status projection_check =
                  CheckColumnarProjection(*blob, snapshot);
              if (!projection_check.ok()) {
                report.Add(check::kColumnarChunk, object,
                           projection_check.ToString());
              }
            }
          } else {
            decode = ChunkedDecompress(*blob, nullptr, &text);
          }
          if (!decode.ok()) {
            report.Add(columnar ? check::kColumnarChunk
                                : check::kEnvelopeDecode,
                       object, decode.ToString());
            prev_epoch = -1;
            prev_text.clear();
            continue;
          }

          Status parse =
              have_snapshot ? Status::OK() : ParseSnapshot(text, &snapshot);
          if (!parse.ok()) {
            report.Add(check::kEnvelopeDecode, object,
                       "decoded text does not parse: " + parse.ToString());
          } else {
            if (snapshot.epoch_start != leaf.epoch_start) {
              report.Add(check::kEnvelopeDecode, object,
                         "decoded snapshot is for epoch " +
                             FormatCompact(snapshot.epoch_start));
            }
            // Live leaves must summarize to exactly what the index holds
            // (bit-exact: AddSnapshot is deterministic over the decoded
            // rows).
            NodeSummary recomputed;
            recomputed.AddSnapshot(snapshot);
            if (!(recomputed == leaf.summary)) {
              report.Add(check::kHighlightConsistency, object,
                         "leaf summary does not match its decoded rows");
            }
          }
          prev_text = std::move(text);
          prev_epoch = leaf.epoch_start;
        }
      }
    }
  }

  // --- Highlight roll-ups: replay each level's merges in insertion order
  // (floating-point merge is order-sensitive, so the replay mirrors
  // AddLeaf/AddSealedDay exactly) and require bit-exact equality. Decayed
  // leaves retain their summaries, so days with evicted leaves still
  // replay; month/year/root replays are skipped once decay stage 2 pruned
  // whole days (their contributions are irreproducible by design). ---
  NodeSummary root_replay;
  for (const YearNode& year : index_.years()) {
    NodeSummary year_replay;
    for (const MonthNode& month : year.months) {
      NodeSummary month_replay;
      for (const DayNode& day : month.days) {
        const std::string object = "day " + FormatCompact(day.day_start);
        if (day.sealed) {
          // No leaves to replay against; the sealed summary feeds the
          // upper levels as one unit, exactly as AddSealedDay merged it.
          month_replay.Merge(day.summary);
          year_replay.Merge(day.summary);
          root_replay.Merge(day.summary);
          continue;
        }
        NodeSummary day_replay;
        for (const LeafNode& leaf : day.leaves) {
          day_replay.Merge(leaf.summary);
          month_replay.Merge(leaf.summary);
          year_replay.Merge(leaf.summary);
          root_replay.Merge(leaf.summary);
        }
        ++report.summaries_checked;
        if (!(day_replay == day.summary)) {
          report.Add(check::kHighlightConsistency, object,
                     "day summary does not equal the ordered merge of its "
                     "leaf summaries");
        }
      }
      if (index_.num_pruned_days() == 0) {
        ++report.summaries_checked;
        if (!(month_replay == month.summary)) {
          report.Add(check::kHighlightConsistency,
                     "month " + FormatCompact(month.month_start),
                     "month summary does not equal the ordered merge of "
                     "its leaves");
        }
      }
    }
    if (index_.num_pruned_days() == 0) {
      ++report.summaries_checked;
      if (!(year_replay == year.summary)) {
        report.Add(check::kHighlightConsistency,
                   "year " + FormatCompact(year.year_start),
                   "year summary does not equal the ordered merge of its "
                   "leaves");
      }
    }
  }
  if (index_.num_pruned_days() == 0) {
    ++report.summaries_checked;
    if (!(root_replay == index_.root_summary())) {
      report.Add(check::kHighlightConsistency, "root",
                 "root summary does not equal the ordered merge of all "
                 "leaves");
    }
  }

  // --- Persisted day summaries: every /spate/index/day blob must frame,
  // decode and parse; for fully-resident days it must also equal the
  // in-memory day summary (a stale persisted aggregate would poison the
  // next recovery). ---
  for (const std::string& path : dfs_->ListFiles("/spate/index/day/")) {
    const Timestamp day_start =
        ParseCompact(path.substr(path.rfind('/') + 1));
    auto blob = dfs_->InspectFile(path);
    if (!blob.ok()) {
      report.Add(check::kEnvelopeDecode, path,
                 "unreadable blob: " + blob.status().ToString());
      continue;
    }
    ++report.files_checked;
    Status framing = VerifyChunkedFraming(*blob);
    if (!framing.ok()) {
      report.Add(check::kContainerFraming, path, framing.ToString());
    }
    std::string serialized;
    NodeSummary persisted;
    Status decode = ChunkedDecompress(*blob, nullptr, &serialized);
    if (decode.ok()) decode = NodeSummary::Parse(serialized, &persisted);
    if (!decode.ok()) {
      report.Add(check::kEnvelopeDecode, path, decode.ToString());
      continue;
    }
    ++report.summaries_checked;
    if (day_start < 0) continue;
    const CoveringNode covering =
        index_.FindCovering(day_start, day_start + 86400);
    if (covering.level != IndexLevel::kDay || covering.summary == nullptr) {
      continue;  // day pruned (or never indexed) — nothing to compare
    }
    // Only compare fully-resident or cleanly-decayed days: a degraded
    // recovery legitimately rebuilds a weaker in-memory summary than the
    // one persisted before the data loss.
    bool has_placeholder = false;
    for (const YearNode& year : index_.years()) {
      for (const MonthNode& month : year.months) {
        for (const DayNode& day : month.days) {
          if (day.day_start != day_start) continue;
          for (const LeafNode& leaf : day.leaves) {
            if (leaf.decayed && leaf.summary == NodeSummary()) {
              has_placeholder = true;
            }
          }
        }
      }
    }
    if (!has_placeholder && !(persisted == *covering.summary)) {
      report.Add(check::kHighlightConsistency, path,
                 "persisted day summary disagrees with the index");
    }
  }

  // --- Concurrency layer: fold in the runtime lock-order detector's
  // findings (cycles / same-rank inversions observed anywhere in this
  // process). No-op unless the build is lockdep-instrumented. ---
  check::AppendLockdep(&report);

  return report;
}

}  // namespace spate
