#ifndef SPATE_CHECK_FSCK_H_
#define SPATE_CHECK_FSCK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spate {

class DistributedFileSystem;

namespace check {

/// Stable invariant identifiers. Tests assert on these exact strings and
/// the DESIGN.md invariant catalog documents one row per id — treat them
/// as a wire format.
///
/// Storage layer (DFS):
inline constexpr std::string_view kReplicaIntegrity = "replica-integrity";
inline constexpr std::string_view kReplicationFactor = "replication-factor";
inline constexpr std::string_view kDfsMetadata = "dfs-metadata";
/// Compression layer:
inline constexpr std::string_view kContainerFraming = "container-framing";
inline constexpr std::string_view kEnvelopeDecode = "envelope-decode";
/// Columnar leaves only: a 0xCD container frames correctly but a column
/// chunk fails to decode, the reassembled snapshot is inconsistent, or a
/// projected decode disagrees with the restriction of the full decode.
inline constexpr std::string_view kColumnarChunk = "columnar-chunk";
/// Index layer:
inline constexpr std::string_view kIndexShape = "index-shape";
inline constexpr std::string_view kHighlightConsistency =
    "highlight-consistency";
inline constexpr std::string_view kDecayOrder = "decay-order";
/// Concurrency layer (only ever emitted in lockdep-instrumented builds;
/// mirrors spate::lockdep's own `lock-cycle` / `lock-same-rank` ids —
/// see AppendLockdep and docs/LOCK_ORDER.md):
inline constexpr std::string_view kLockOrder = "lock-order";

/// One detected invariant violation.
struct FsckViolation {
  /// One of the invariant ids above.
  std::string invariant;
  /// The object the violation anchors to: a DFS path, "block <id>",
  /// "leaf <epoch>", "day <epoch>", "index", ...
  std::string object;
  /// Human-readable specifics (expected vs observed).
  std::string detail;
};

/// Structured outcome of a verification pass. `clean()` on a healthy store;
/// otherwise every violation is classified by invariant id so tests (and
/// operators) can tell a flipped replica byte from a broken roll-up.
struct FsckReport {
  std::vector<FsckViolation> violations;

  // Coverage counters (what the pass actually looked at).
  uint64_t blocks_checked = 0;
  uint64_t replicas_checked = 0;
  uint64_t files_checked = 0;
  uint64_t leaves_checked = 0;
  uint64_t containers_checked = 0;
  uint64_t summaries_checked = 0;
  /// Mutex sites whose acquisition history the lockdep pass examined
  /// (0 in uninstrumented builds — the pass is then a no-op).
  uint64_t lock_sites_checked = 0;

  bool clean() const { return violations.empty(); }

  void Add(std::string_view invariant, std::string object,
           std::string detail);

  /// Violations recorded against one invariant id.
  std::vector<const FsckViolation*> ViolationsFor(
      std::string_view invariant) const;

  /// True if at least one violation carries this invariant id.
  bool Detected(std::string_view invariant) const {
    return !ViolationsFor(invariant).empty();
  }

  /// Multi-line operator-facing rendering (what `spate_cli fsck` prints).
  std::string ToString() const;
};

/// DFS-only deep verify: every replica of every block CRC-checked against
/// the write-time metadata (replica-integrity), healthy-copy counts against
/// the replication target (replication-factor), and namenode bookkeeping —
/// dangling block ids, file sizes vs block sums (dfs-metadata). Appends to
/// `*report`; charges no simulated I/O. The fault-injection tests use this
/// as the detection oracle for every seeded storage corruption.
void VerifyDfs(const DistributedFileSystem& dfs, FsckReport* report);

/// Convenience wrapper returning a fresh report.
FsckReport VerifyDfs(const DistributedFileSystem& dfs);

/// Folds the runtime lock-order detector's findings (spate::lockdep) into
/// `*report`: every cycle or same-rank inversion observed since process
/// start (or the last `lockdep::ResetForTest`) becomes a `lock-order`
/// violation whose detail preserves the detector's stable violation id and
/// acquisition path. No-op in uninstrumented builds beyond leaving
/// `lock_sites_checked` at 0. Called by `SpateFramework::Fsck()` so a
/// routine fsck surfaces deadlock potential alongside data corruption.
void AppendLockdep(FsckReport* report);

}  // namespace check
}  // namespace spate

#endif  // SPATE_CHECK_FSCK_H_
