#include "core/columnar_leaf.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "compress/columnar.h"
#include "index/leaf_spatial.h"

namespace spate {
namespace {

/// Sanity cap on the total field count a "@meta" width table may claim
/// before the rows are materialized (untrusted input; a real snapshot is
/// a few thousand rows x 200 columns).
constexpr uint64_t kMaxMetaFields = 64ull << 20;

std::string ColumnChunkName(const TableSchema& schema, char prefix,
                            int column) {
  std::string name{prefix, ':'};
  if (column >= 0 && static_cast<size_t>(column) < schema.num_attributes()) {
    name += schema.attributes()[static_cast<size_t>(column)].name;
  } else {
    name += "#" + std::to_string(column);
  }
  return name;
}

/// Appends one table's row widths as RLE pairs (runs of equal widths: real
/// snapshots are rectangular, so this is a handful of bytes).
void AppendWidthsRle(const std::vector<Record>& rows, std::string* out) {
  std::vector<std::pair<uint64_t, uint64_t>> runs;  // (width, run length)
  for (const Record& row : rows) {
    const uint64_t width = row.size();
    if (runs.empty() || runs.back().first != width) {
      runs.emplace_back(width, 1);
    } else {
      ++runs.back().second;
    }
  }
  PutVarint64(out, runs.size());
  for (const auto& [width, length] : runs) {
    PutVarint64(out, width);
    PutVarint64(out, length);
  }
}

Status ParseWidthsRle(Slice* input, std::vector<uint32_t>* widths) {
  uint64_t num_runs = 0;
  if (!GetVarint64(input, &num_runs)) {
    return Status::Corruption("columnar leaf: truncated width table");
  }
  uint64_t total_rows = 0;
  uint64_t total_fields = 0;
  for (uint64_t run = 0; run < num_runs; ++run) {
    uint64_t width = 0;
    uint64_t length = 0;
    if (!GetVarint64(input, &width) || !GetVarint64(input, &length)) {
      return Status::Corruption("columnar leaf: truncated width table");
    }
    total_rows += length;
    total_fields += width * length;
    if (total_fields > kMaxMetaFields || total_rows > kMaxMetaFields) {
      return Status::Corruption("columnar leaf: implausible width table");
    }
    widths->insert(widths->end(), static_cast<size_t>(length),
                   static_cast<uint32_t>(width));
  }
  return Status::OK();
}

/// Decodes a chunk by name, accounting the decompressed bytes. This is the
/// single per-chunk decode funnel, so the fragment cache plugs in here: a
/// hit serves the plaintext without touching the codec (and without
/// charging `*bytes_decoded` — the scope counts the avoided bytes instead),
/// a miss decodes and admits the result under the chunk's name.
Status DecodeChunk(const ColumnarReader& reader, std::string_view name,
                   std::string* data, uint64_t* bytes_decoded,
                   FragmentCacheScope* fragments = nullptr) {
  if (fragments != nullptr && fragments->cache != nullptr &&
      fragments->cache->Lookup(fragments->leaf_epoch, name,
                               fragments->generation, data)) {
    ++fragments->hits;
    fragments->bytes_saved += data->size();
    return Status::OK();
  }
  const ColumnarReader::ChunkRef* chunk = reader.Find(name);
  if (chunk == nullptr) {
    return Status::Corruption("columnar leaf: missing chunk '" +
                              std::string(name) + "'");
  }
  SPATE_RETURN_IF_ERROR(ColumnarReader::Decode(*chunk, data));
  if (bytes_decoded != nullptr) *bytes_decoded += data->size();
  if (fragments != nullptr && fragments->cache != nullptr) {
    fragments->cache->Insert(fragments->leaf_epoch, name,
                             fragments->generation, *data);
  }
  return Status::OK();
}

/// Ascending row positions of `wanted_cells` within one table, from the
/// leaf's embedded spatial index.
std::vector<uint32_t> SelectedPositions(
    const LeafSpatialIndex& index, bool cdr_table,
    const std::unordered_set<std::string>& wanted_cells) {
  std::vector<uint32_t> positions;
  for (const std::string& cell_id : wanted_cells) {
    const std::vector<uint32_t>* rows =
        cdr_table ? index.CdrRows(cell_id) : index.NmsRows(cell_id);
    if (rows != nullptr) {
      positions.insert(positions.end(), rows->begin(), rows->end());
    }
  }
  std::sort(positions.begin(), positions.end());
  return positions;
}

/// Materializes one table: builds `count` rows at their original widths,
/// then fills exactly the projected columns from their chunks. `selected`
/// (when non-null) lists the row positions to keep, ascending.
Status MaterializeTable(const ColumnarReader& reader,
                        const TableSchema& schema, char prefix,
                        const std::vector<uint32_t>& widths,
                        const TableProjection& projection,
                        const std::vector<uint32_t>* selected,
                        std::vector<Record>* rows, uint64_t* bytes_decoded,
                        FragmentCacheScope* fragments) {
  if (projection.skip) return Status::OK();
  const size_t n = widths.size();
  uint32_t max_width = 0;
  for (uint32_t width : widths) max_width = std::max(max_width, width);
  if (selected != nullptr) {
    rows->reserve(selected->size());
    for (uint32_t position : *selected) {
      if (position >= n) {
        return Status::Corruption(
            "columnar leaf: spatial index names row " +
            std::to_string(position) + " of a " + std::to_string(n) +
            "-row table");
      }
      rows->emplace_back(widths[position]);
    }
  } else {
    rows->reserve(n);
    for (uint32_t width : widths) rows->emplace_back(width);
  }

  std::vector<int> columns;
  if (projection.all) {
    columns.resize(max_width);
    for (uint32_t c = 0; c < max_width; ++c) columns[c] = static_cast<int>(c);
  } else {
    for (int c : projection.columns) {
      if (c >= 0 && static_cast<uint32_t>(c) < max_width) columns.push_back(c);
    }
  }

  std::string data;
  for (const int column : columns) {
    data.clear();
    SPATE_RETURN_IF_ERROR(DecodeChunk(
        reader, ColumnChunkName(schema, prefix, column), &data,
        bytes_decoded, fragments));
    // Walk the rows in order, consuming one '\n'-terminated value per row
    // wide enough to carry this column; copy it out for kept rows.
    const uint32_t c = static_cast<uint32_t>(column);
    size_t value_begin = 0;
    size_t next_selected = 0;  // index into *selected (when restricting)
    for (size_t position = 0; position < n; ++position) {
      const bool kept =
          selected == nullptr
              ? true
              : (next_selected < selected->size() &&
                 (*selected)[next_selected] == position);
      if (widths[position] > c) {
        const char* terminator = static_cast<const char*>(
            memchr(data.data() + value_begin, '\n',
                   data.size() - value_begin));
        if (terminator == nullptr) {
          return Status::Corruption("columnar leaf: column chunk '" +
                                    ColumnChunkName(schema, prefix, column) +
                                    "' holds too few values");
        }
        const size_t value_end =
            static_cast<size_t>(terminator - data.data());
        if (kept) {
          const size_t row = selected == nullptr ? position : next_selected;
          (*rows)[row][c].assign(data, value_begin,
                                 value_end - value_begin);
        }
        value_begin = value_end + 1;
      }
      if (kept && selected != nullptr) ++next_selected;
    }
    if (value_begin != data.size()) {
      return Status::Corruption("columnar leaf: column chunk '" +
                                ColumnChunkName(schema, prefix, column) +
                                "' holds trailing bytes");
    }
  }
  return Status::OK();
}

/// Builds the full chunk set of the columnar container in its canonical
/// order: "@meta", "@spidx", then one chunk per CDR column and one per NMS
/// column. Shared by the encoder and the stats recomputation so both see
/// identical plaintext sizes.
std::vector<ColumnChunk> BuildColumnarChunks(const Snapshot& snapshot,
                                             size_t* cdr_width_out,
                                             size_t* nms_width_out) {
  std::vector<ColumnChunk> chunks;
  size_t cdr_width = 0;
  for (const Record& row : snapshot.cdr) {
    cdr_width = std::max(cdr_width, row.size());
  }
  size_t nms_width = 0;
  for (const Record& row : snapshot.nms) {
    nms_width = std::max(nms_width, row.size());
  }
  chunks.reserve(2 + cdr_width + nms_width);

  // "@meta": epoch + the row-width tables (the decode-side row skeleton).
  ColumnChunk meta;
  meta.name = kColumnarMetaChunk;
  PutVarint64(&meta.data, ZigZagEncode64(snapshot.epoch_start));
  AppendWidthsRle(snapshot.cdr, &meta.data);
  AppendWidthsRle(snapshot.nms, &meta.data);
  chunks.push_back(std::move(meta));

  // "@spidx": cell id -> row positions, for bounding-box row restriction.
  chunks.push_back(ColumnChunk{std::string(kColumnarSpatialChunk),
                               LeafSpatialIndex::Build(snapshot).Serialize()});

  // One chunk per column, values '\n'-terminated in row order. A column's
  // chunk lists one value per row wide enough to carry it, so ragged rows
  // round-trip exactly.
  auto shred = [](const std::vector<Record>& rows, size_t width,
                  const TableSchema& schema, char prefix,
                  std::vector<ColumnChunk>* out) {
    for (size_t column = 0; column < width; ++column) {
      ColumnChunk chunk;
      chunk.name = ColumnChunkName(schema, prefix, static_cast<int>(column));
      for (const Record& row : rows) {
        if (row.size() <= column) continue;
        chunk.data += row[column];
        chunk.data += '\n';
      }
      out->push_back(std::move(chunk));
    }
  };
  shred(snapshot.cdr, cdr_width, CdrSchema(), 'c', &chunks);
  shred(snapshot.nms, nms_width, NmsSchema(), 'n', &chunks);
  if (cdr_width_out != nullptr) *cdr_width_out = cdr_width;
  if (nms_width_out != nullptr) *nms_width_out = nms_width;
  return chunks;
}

/// Fills `stats` from the canonical chunk sequence of `BuildColumnarChunks`.
void FillStatsFromChunks(const std::vector<ColumnChunk>& chunks,
                         size_t cdr_width, size_t nms_width,
                         LeafDecodeStats* stats) {
  *stats = LeafDecodeStats{};
  stats->columnar = true;
  stats->meta_bytes = chunks[0].data.size();
  stats->spidx_bytes = chunks[1].data.size();
  stats->cdr_column_bytes.reserve(cdr_width);
  for (size_t c = 0; c < cdr_width; ++c) {
    stats->cdr_column_bytes.push_back(chunks[2 + c].data.size());
  }
  stats->nms_column_bytes.reserve(nms_width);
  for (size_t c = 0; c < nms_width; ++c) {
    stats->nms_column_bytes.push_back(chunks[2 + cdr_width + c].data.size());
  }
}

}  // namespace

std::string CdrColumnChunkName(int column) {
  return ColumnChunkName(CdrSchema(), 'c', column);
}

std::string NmsColumnChunkName(int column) {
  return ColumnChunkName(NmsSchema(), 'n', column);
}

Status EncodeColumnarLeaf(const Codec& codec, const Snapshot& snapshot,
                          ThreadPool* pool, std::string* blob,
                          LeafDecodeStats* stats) {
  size_t cdr_width = 0;
  size_t nms_width = 0;
  const std::vector<ColumnChunk> chunks =
      BuildColumnarChunks(snapshot, &cdr_width, &nms_width);
  if (stats != nullptr) {
    FillStatsFromChunks(chunks, cdr_width, nms_width, stats);
  }
  return ColumnarPack(codec, chunks, pool, blob);
}

void ComputeColumnarLeafStats(const Snapshot& snapshot,
                              LeafDecodeStats* stats) {
  size_t cdr_width = 0;
  size_t nms_width = 0;
  const std::vector<ColumnChunk> chunks =
      BuildColumnarChunks(snapshot, &cdr_width, &nms_width);
  FillStatsFromChunks(chunks, cdr_width, nms_width, stats);
}

Status DecodeColumnarLeaf(Slice blob, const TableProjection& cdr,
                          const TableProjection& nms,
                          const std::unordered_set<std::string>* wanted_cells,
                          Snapshot* snapshot, uint64_t* bytes_decoded,
                          FragmentCacheScope* fragments) {
  ColumnarReader reader;
  SPATE_RETURN_IF_ERROR(ColumnarReader::Open(blob, &reader));

  std::string meta;
  SPATE_RETURN_IF_ERROR(
      DecodeChunk(reader, kColumnarMetaChunk, &meta, bytes_decoded,
                  fragments));
  Slice input(meta);
  uint64_t epoch_zigzag = 0;
  if (!GetVarint64(&input, &epoch_zigzag)) {
    return Status::Corruption("columnar leaf: truncated meta chunk");
  }
  snapshot->epoch_start = ZigZagDecode64(epoch_zigzag);
  std::vector<uint32_t> cdr_widths;
  std::vector<uint32_t> nms_widths;
  SPATE_RETURN_IF_ERROR(ParseWidthsRle(&input, &cdr_widths));
  SPATE_RETURN_IF_ERROR(ParseWidthsRle(&input, &nms_widths));
  if (!input.empty()) {
    return Status::Corruption("columnar leaf: trailing bytes in meta chunk");
  }

  // Bounding-box restriction: resolve the wanted cells to row positions via
  // the embedded spatial index (the only extra chunk a box query decodes).
  std::vector<uint32_t> cdr_selected;
  std::vector<uint32_t> nms_selected;
  if (wanted_cells != nullptr) {
    std::string serialized;
    SPATE_RETURN_IF_ERROR(DecodeChunk(reader, kColumnarSpatialChunk,
                                      &serialized, bytes_decoded, fragments));
    LeafSpatialIndex index;
    SPATE_RETURN_IF_ERROR(LeafSpatialIndex::Parse(serialized, &index));
    cdr_selected = SelectedPositions(index, /*cdr_table=*/true, *wanted_cells);
    nms_selected =
        SelectedPositions(index, /*cdr_table=*/false, *wanted_cells);
  }

  SPATE_RETURN_IF_ERROR(MaterializeTable(
      reader, CdrSchema(), 'c', cdr_widths, cdr,
      wanted_cells != nullptr ? &cdr_selected : nullptr, &snapshot->cdr,
      bytes_decoded, fragments));
  SPATE_RETURN_IF_ERROR(MaterializeTable(
      reader, NmsSchema(), 'n', nms_widths, nms,
      wanted_cells != nullptr ? &nms_selected : nullptr, &snapshot->nms,
      bytes_decoded, fragments));
  return Status::OK();
}

}  // namespace spate
