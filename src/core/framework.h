#ifndef SPATE_CORE_FRAMEWORK_H_
#define SPATE_CORE_FRAMEWORK_H_

#include <functional>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/status.h"
#include "dfs/dfs.h"
#include "index/highlights.h"
#include "index/spatial.h"
#include "index/temporal_index.h"
#include "telco/snapshot.h"

namespace spate {

class TableSchema;

/// A data exploration query Q(a, b, w): attribute selection `a`, spatial
/// bounding box `b` and temporal window `w` (Section VI-A).
struct ExplorationQuery {
  /// Selected attributes (`a`). Empty = all.
  std::vector<std::string> attributes;
  /// Spatial bounding box (`b`); ignored unless `has_box`.
  BoundingBox box;
  bool has_box = false;
  /// Temporal window [begin, end) (`w`).
  Timestamp window_begin = 0;
  Timestamp window_end = 0;
  /// Which fact tables the query reads. `Q(a, b, w)` reads both; the SQL
  /// planner lowers a single-table SELECT with the other table masked off,
  /// so projected scans skip its chunks entirely.
  bool want_cdr = true;
  bool want_nms = true;
};

/// Answer to an exploration query. When the window is still at full
/// resolution the result is exact (filtered raw rows); when parts of it have
/// decayed, the result degrades gracefully to the covering node's highlight
/// summary — SPATE's core trade (Section V-C). Storage faults degrade the
/// same way: a leaf whose every replica is unreadable is served like a
/// decayed leaf (`degraded` + `skipped_epochs` say so).
struct QueryResult {
  bool exact = false;
  /// The index level that served the query (epoch = raw leaves).
  IndexLevel served_from = IndexLevel::kEpoch;
  std::vector<Record> cdr_rows;
  std::vector<Record> nms_rows;
  /// Aggregate summary of the served period restricted to `b`'s cells.
  NodeSummary summary;
  std::vector<Highlight> highlights;
  /// True when storage faults (not decay) forced the summary fallback.
  bool degraded = false;
  /// Epoch starts of in-window leaves with no readable replica.
  std::vector<Timestamp> skipped_epochs;
};

/// Outcome of the most recent `ScanWindow` on frameworks that support
/// degraded reads: how many leaves were streamed and which in-window epochs
/// were skipped because no replica of their data could be read.
struct ScanStats {
  size_t leaves_scanned = 0;
  std::vector<Timestamp> skipped_epochs;
  /// Leaves proven disjoint from the query box by their summary's cell-id
  /// set and skipped before any decompression (spatial pushdown; never
  /// counts toward `complete()` — skipping is exact, not degradation).
  size_t leaves_skipped_spatial = 0;
  /// Bytes actually produced by decompression during the scan (cache hits
  /// and skipped leaves contribute nothing). The projection-pushdown win of
  /// the columnar leaf layout shows up here: a narrow query decodes only
  /// the column chunks it needs.
  uint64_t bytes_decoded = 0;
  /// Fragment-cache wins during this scan (core/fragment_cache.h):
  /// fragments served already decoded, and the decompressed bytes those
  /// hits would otherwise have added to `bytes_decoded`. Zero on
  /// frameworks without a fragment cache.
  uint64_t fragment_hits = 0;
  uint64_t bytes_decoded_saved = 0;

  bool complete() const { return skipped_epochs.empty(); }
};

/// One in-window leaf as the SQL planner sees it: enough to predict the
/// decode cost of every access path without touching the DFS. The pointers
/// alias index-owned state and follow the scan-time lifetime contract
/// (valid while no ingest/decay runs — see TemporalIndex's header).
struct PlannerLeafInfo {
  Timestamp epoch_start = 0;
  /// Differential leaf: decoding materializes the delta chain, so the
  /// prediction (the leaf's own text size) is a floor, not exact.
  bool delta = false;
  const LeafDecodeStats* stats = nullptr;
  const NodeSummary* summary = nullptr;
  /// Decoded-fragment bytes of this leaf resident in the framework's
  /// fragment cache at the current store generation: the next scan will not
  /// pay to decode them, so the planner prices them at ~0. Zero without a
  /// cache.
  uint64_t fragment_cached_bytes = 0;
};

/// Per-leaf statistics for the cost-based SQL planner
/// (`Framework::CollectPlannerStatistics`). Frameworks without an index
/// return `available == false` and the planner falls back to the naive
/// full-scan path.
struct PlannerStatistics {
  bool available = false;
  /// Every in-window leaf is still at full resolution — exact row answers
  /// are possible and summary answering matches them.
  bool window_fully_resolved = false;
  /// The framework's projected scan skips leaves provably disjoint from the
  /// query box (`SpateOptions::spatial_leaf_skip`).
  bool spatial_leaf_skip = false;
  /// Non-decayed leaves intersecting the window, in time order.
  std::vector<PlannerLeafInfo> leaves;
};

/// Ingestion cost breakdown for one snapshot (Fig. 7/9's metric).
struct IngestStats {
  double compress_seconds = 0;  // serialization + compression CPU
  double store_seconds = 0;     // simulated DFS write time
  double index_seconds = 0;     // incremence + highlights CPU
  uint64_t stored_bytes = 0;    // bytes written for the snapshot

  double total_seconds() const {
    return compress_seconds + store_seconds + index_seconds;
  }
};

/// `ExplorationQuery::attributes` resolved against one table's schema: which
/// columns a projected read must materialize. Projection is
/// position-preserving — a projected row keeps its original width with
/// non-selected fields left empty — so the `kCdr*`/`kNms*` index constants
/// keep working on projected rows and results are byte-comparable across
/// row and columnar leaf layouts.
struct TableProjection {
  /// Materialize every column (`attributes` empty, or every name resolved).
  bool all = true;
  /// The attribute list names no column of this table: the table
  /// contributes no rows at all (a projected scan skips it wholesale).
  bool skip = false;
  /// Sorted, de-duplicated column indices to materialize (unused when
  /// `all` or `skip`).
  std::vector<int> columns;

  bool Keeps(int column) const;
};

/// Resolves `attributes` against `schema`. Unknown names are ignored; an
/// empty list selects every column; a list resolving to no column of this
/// table yields `skip`.
TableProjection ResolveProjection(const TableSchema& schema,
                                  const std::vector<std::string>& attributes);

/// Like `ResolveProjection`, but always force-includes `ts_column` and
/// `cell_column` — the scan-side materialization projection, so window and
/// box predicates can still be evaluated on the projected rows.
TableProjection ScanProjection(const TableSchema& schema,
                               const std::vector<std::string>& attributes,
                               int ts_column, int cell_column);

/// Applies `projection` to one row: the identity when `all`, otherwise a
/// same-width record with only the projected fields copied.
Record ProjectRecord(const Record& row, const TableProjection& projection);

/// Restricts a snapshot for a projected scan: drops rows of skipped tables
/// and (when `wanted_cells` is non-null) rows whose cell id is not in the
/// set, preserving row order; surviving rows are projected. This is the
/// reference semantics every `ScanWindowProjected` implementation must
/// match byte for byte — the columnar leaf reader produces the same
/// snapshot without ever materializing the dropped columns.
Snapshot RestrictSnapshot(const Snapshot& snapshot,
                          const TableProjection& cdr,
                          const TableProjection& nms,
                          const std::unordered_set<std::string>* wanted_cells);

/// Common surface of the three compared frameworks (RAW / SHAHED / SPATE),
/// so every task and benchmark runs unchanged against each.
class Framework {
 public:
  virtual ~Framework() = default;

  virtual std::string_view Name() const = 0;

  /// Ingests one arriving snapshot (storage + any indexing).
  virtual Status Ingest(const Snapshot& snapshot) = 0;

  /// Cost breakdown of the most recent `Ingest`.
  virtual const IngestStats& last_ingest_stats() const = 0;

  /// Evaluates a data exploration query.
  virtual Result<QueryResult> Execute(const ExplorationQuery& query) = 0;

  /// Streams every stored snapshot intersecting [begin, end) through `fn`,
  /// in time order (decompressing as needed). The workhorse of the task
  /// suite (T1-T8) and the SQL layer. Frameworks with degraded-read support
  /// skip unreadable leaves and report them in `last_scan_stats()`.
  virtual Status ScanWindow(
      Timestamp begin, Timestamp end,
      const std::function<void(const Snapshot&)>& fn) = 0;

  /// Projection-pushdown variant of `ScanWindow`: streams every in-window
  /// snapshot restricted to the query's attribute selection and bounding
  /// box (`RestrictSnapshot` semantics — same-width rows with non-selected
  /// fields empty, skipped tables contributing no rows). The default
  /// implementation decodes fully and restricts in memory; SPATE's
  /// columnar leaf layout overrides it to decode only the needed column
  /// chunks and to skip leaves provably disjoint from the box (for which
  /// `fn` is then not called at all — restriction would have emptied them).
  virtual Status ScanWindowProjected(
      const ExplorationQuery& query,
      const std::function<void(const Snapshot&)>& fn);

  /// Skip accounting of the most recent `ScanWindow`. The default (used by
  /// the baselines, which fail hard instead of degrading) reports an empty,
  /// complete scan.
  virtual const ScanStats& last_scan_stats() const {
    static const ScanStats kEmpty;
    return kEmpty;
  }

  /// Aggregate summary of [begin, end): index-backed frameworks merge
  /// materialized node summaries; RAW scans and re-aggregates.
  virtual Result<NodeSummary> AggregateWindow(Timestamp begin,
                                              Timestamp end) = 0;

  /// Plan-visible statistics of [begin, end) for the cost-based SQL
  /// planner: per-leaf layout, decode costs and spatial summaries. The
  /// default (baselines) reports `available == false`; SPATE overrides it
  /// from the temporal index. Same external-synchronization contract as
  /// `ScanWindow` — the returned pointers are valid until the next mutator.
  virtual PlannerStatistics CollectPlannerStatistics(Timestamp begin,
                                                     Timestamp end) const {
    (void)begin;
    (void)end;
    return {};
  }

  /// Total logical bytes this framework occupies on its DFS (data + index):
  /// the S' = Sc + Si of the paper's Space metric.
  virtual uint64_t StorageBytes() const = 0;

  /// The framework's file system (for I/O accounting).
  virtual DistributedFileSystem& dfs() = 0;

  /// The static cell inventory shared by all frameworks.
  virtual const CellDirectory& cells() const = 0;

  /// The raw CELL table rows (for SQL over the CELL table).
  virtual const std::vector<Record>& cell_rows() const = 0;

  /// Installs a cooperative cancellation/deadline token that subsequent
  /// `Execute`/`ScanWindow` calls poll between leaf decodes, unwinding with
  /// `kDeadlineExceeded` when it expires (never mid-leaf, so observed state
  /// stays consistent). `nullptr` detaches. The token must outlive every
  /// call made while installed; like the rest of the surface this setter is
  /// externally synchronized with those calls. The baselines ignore it —
  /// they fail or finish, which is itself a measured difference.
  virtual void SetCancelToken(const CancelToken* token) { (void)token; }
};

/// Filters `snapshot` rows to those inside the window and (optionally) the
/// box's cells, appending to the result vectors; when the query selects
/// attributes, surviving rows are projected (`ProjectRecord`) and tables
/// the selection does not touch contribute no rows. Shared by
/// implementations, so all three frameworks agree byte for byte.
void FilterSnapshotRows(const Snapshot& snapshot,
                        const ExplorationQuery& query,
                        const CellDirectory& cells,
                        std::vector<Record>* cdr_out,
                        std::vector<Record>* nms_out);

/// Restricts `summary` to the cells inside `query.box` (all cells if the
/// query has no box).
NodeSummary RestrictSummaryToBox(const NodeSummary& summary,
                                 const ExplorationQuery& query,
                                 const CellDirectory& cells);

}  // namespace spate

#endif  // SPATE_CORE_FRAMEWORK_H_
