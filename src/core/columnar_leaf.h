#ifndef SPATE_CORE_COLUMNAR_LEAF_H_
#define SPATE_CORE_COLUMNAR_LEAF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>

#include "common/slice.h"
#include "common/status.h"
#include "compress/codec.h"
#include "core/fragment_cache.h"
#include "core/framework.h"
#include "index/temporal_index.h"
#include "telco/schema.h"
#include "telco/snapshot.h"

namespace spate {

class ThreadPool;

/// Snapshot shredding for the columnar leaf layout
/// (`SpateOptions::leaf_layout = kColumnar`): one snapshot becomes a 0xCD
/// columnar container (compress/columnar.h) whose chunks are
///
///   "@meta"        epoch + per-table row-width tables (always decoded; the
///                  width tables preserve ragged rows bit-exactly and tell
///                  the reader which rows carry which columns),
///   "@spidx"       the serialized `LeafSpatialIndex` of the snapshot
///                  (cell id -> row positions), decoded only by bounding-box
///                  queries to jump straight to the matching rows,
///   "c:<attr>"     one chunk per CDR column (attribute-named; columns
///                  beyond the schema width are named "c:#<index>"),
///   "n:<attr>"     one chunk per NMS column.
///
/// A column chunk holds the column's values in row order, one per row that
/// is wide enough to carry the column, each terminated by '\n' (the same
/// cannot-contain-separator contract as the row text format). A projected
/// read decodes "@meta" plus exactly the requested columns; a full decode
/// reproduces the original snapshot bit for bit, so
/// `SerializeSnapshot(decoded)` equals the row layout's stored text.

/// Chunk names of the two metadata chunks ("@" sorts before any schema
/// attribute name and is not a legal attribute character, so metadata can
/// never collide with a column chunk).
inline constexpr std::string_view kColumnarMetaChunk = "@meta";
inline constexpr std::string_view kColumnarSpatialChunk = "@spidx";

/// Chunk name of one shredded CDR column: "c:<attribute name>", or
/// "c:#<index>" past the schema width.
std::string CdrColumnChunkName(int column);

/// Chunk name of one shredded NMS column: "n:<attribute name>" /
/// "n:#<index>".
std::string NmsColumnChunkName(int column);

/// Shreds `snapshot` into the columnar container, compressing each chunk
/// with `codec` (in parallel on `pool` when given — the stored bytes are
/// identical at every worker count) and appending the blob to `*blob`.
/// When `stats` is non-null it is filled with the exact plaintext size of
/// every chunk (the SQL planner's cost-model input, see `LeafDecodeStats`).
Status EncodeColumnarLeaf(const Codec& codec, const Snapshot& snapshot,
                          ThreadPool* pool, std::string* blob,
                          LeafDecodeStats* stats = nullptr);

/// Recomputes the per-chunk decode statistics of `snapshot` without
/// encoding anything — the recovery path rebuilds `LeafNode::decode_stats`
/// with this after decoding a columnar blob; the sizes equal what
/// `EncodeColumnarLeaf` would report for the same snapshot.
void ComputeColumnarLeafStats(const Snapshot& snapshot, LeafDecodeStats* stats);

/// Reassembles (part of) a snapshot from a columnar blob.
///
/// `cdr` / `nms` select the columns to materialize per table
/// (`RestrictSnapshot` semantics: rows keep their original width with
/// non-selected fields empty; a `skip` projection drops the table's rows
/// wholesale without decoding any of its chunks). When `wanted_cells` is
/// non-null, only rows whose cell id is in the set are materialized — via
/// the embedded "@spidx" row-position lists, in ascending row order — so a
/// bounding-box query never touches the other rows' bytes.
///
/// With both projections `all` and no cell restriction the result is the
/// original snapshot, bit for bit.
///
/// `*bytes_decoded` (may be null) is incremented by the number of
/// decompressed bytes actually produced — the projection-pushdown metric
/// surfaced in `ScanStats::bytes_decoded`.
///
/// `fragments` (may be null) consults/feeds a decoded-fragment cache at the
/// per-chunk decode funnel: a cached chunk is served without touching the
/// codec and adds nothing to `*bytes_decoded` (the scope counts the hit and
/// the avoided bytes instead); a freshly decoded chunk is admitted under
/// its chunk name. Caching never changes the produced snapshot — only
/// where the plaintext came from.
Status DecodeColumnarLeaf(Slice blob, const TableProjection& cdr,
                          const TableProjection& nms,
                          const std::unordered_set<std::string>* wanted_cells,
                          Snapshot* snapshot, uint64_t* bytes_decoded,
                          FragmentCacheScope* fragments = nullptr);

}  // namespace spate

#endif  // SPATE_CORE_COLUMNAR_LEAF_H_
