#include "core/spate_framework.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_set>

#include "common/check.h"
#include "common/stopwatch.h"
#include "index/leaf_spatial.h"
#include "telco/schema.h"

namespace spate {
namespace {

/// Failures that degraded-read mode absorbs: the data is gone or currently
/// unreachable, but the in-memory summaries still answer for it. Anything
/// else (logic errors, bad arguments) stays fatal.
bool DegradableFailure(const Status& status) {
  return status.IsUnavailable() || status.IsCorruption() ||
         status.IsNotFound();
}

}  // namespace

SpateFramework::SpateFramework(SpateOptions options,
                               const std::vector<Record>& cell_rows)
    : SpateFramework(options,
                     std::make_shared<DistributedFileSystem>(options.dfs),
                     cell_rows, /*write_meta=*/true) {}

SpateFramework::SpateFramework(SpateOptions options,
                               std::shared_ptr<DistributedFileSystem> dfs,
                               const std::vector<Record>& cell_rows,
                               bool write_meta)
    : options_(std::move(options)),
      codec_(CodecRegistry::Get(options_.codec)),
      dfs_(std::move(dfs)),
      cells_(cell_rows),
      cell_rows_(cell_rows) {
  if (codec_ == nullptr) codec_ = CodecRegistry::Get("deflate");
  if (options_.parallelism.worker_count > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(options_.parallelism.worker_count));
    materialize_ctx_.decode_pool = pool_.get();
  }
  if (options_.differential) {
    // Deltas must never outlive the chain they decode against: decay only
    // at keyframe-group boundaries.
    options_.decay.horizon_alignment_seconds =
        std::max(1, options_.keyframe_interval) * kEpochSeconds;
  }
  if (write_meta) {
    // Persist the static cell inventory alongside the data.
    std::string cell_text = SerializeCells(cell_rows);
    std::string compressed;
    if (codec_->Compress(cell_text, &compressed).ok()) {
      dfs_->WriteFile("/spate/meta/cells", compressed);
    }
  }
}

std::string SpateFramework::LeafPath(Timestamp epoch_start) {
  const std::string key = FormatCompact(epoch_start);
  // /spate/data/YYYY/MM/DD/YYYYMMDDhhmm
  return "/spate/data/" + key.substr(0, 4) + "/" + key.substr(4, 2) + "/" +
         key.substr(6, 2) + "/" + key;
}

Result<std::unique_ptr<SpateFramework>> SpateFramework::Recover(
    SpateOptions options, std::shared_ptr<DistributedFileSystem> dfs) {
  if (dfs == nullptr) {
    return Status::InvalidArgument("recover: null dfs");
  }
  // 1. Cell inventory from /spate/meta/cells (codec taken from the blob's
  // envelope, in case the restart changed the configured codec).
  SPATE_ASSIGN_OR_RETURN(std::string cells_blob,
                         dfs->ReadFile("/spate/meta/cells"));
  if (cells_blob.empty()) {
    return Status::Corruption("recover: empty cell inventory");
  }
  const Codec* meta_codec =
      CodecRegistry::GetById(static_cast<uint8_t>(cells_blob[0]));
  if (meta_codec == nullptr) {
    return Status::Corruption("recover: unknown cell inventory codec");
  }
  std::string cells_text;
  SPATE_RETURN_IF_ERROR(meta_codec->Decompress(cells_blob, &cells_text));
  std::vector<Record> cell_rows;
  SPATE_RETURN_IF_ERROR(ParseCells(cells_text, &cell_rows));

  std::unique_ptr<SpateFramework> framework(new SpateFramework(
      std::move(options), std::move(dfs), cell_rows, /*write_meta=*/false));

  const bool tolerate = framework->options_.degraded_reads;
  RecoveryReport& report = framework->recovery_report_;

  // 2. Persisted day summaries (cover fully-decayed days). An unreadable
  // summary blob is dropped in degraded mode: the month/year roll-ups that
  // the resident leaves rebuild are the best remaining answer.
  std::map<Timestamp, NodeSummary> day_summaries;
  for (const std::string& path :
       framework->dfs_->ListFiles("/spate/index/day/")) {
    const Timestamp day = ParseCompact(path.substr(path.rfind('/') + 1));
    if (day < 0) continue;
    auto blob = framework->dfs_->ReadFile(path);
    Status status = blob.status();
    std::string serialized;
    NodeSummary summary;
    if (status.ok()) status = ChunkedDecompress(*blob, nullptr, &serialized);
    if (status.ok()) status = NodeSummary::Parse(serialized, &summary);
    if (!status.ok()) {
      if (tolerate && DegradableFailure(status)) {
        ++report.day_summaries_skipped;
        continue;
      }
      return status;
    }
    ++report.day_summaries_recovered;
    day_summaries.emplace(day, std::move(summary));
  }

  // 3. Resident leaves, in time order (paths sort chronologically). Delta
  // blobs (".d" suffix) replay against the previous epoch's text. In
  // degraded mode a leaf whose blob cannot be read — or a delta stranded
  // because its chain lost an earlier link — becomes a decayed placeholder
  // so that queries over its window degrade to summaries instead of
  // silently claiming exactness.
  const std::vector<std::string> leaf_paths =
      framework->dfs_->ListFiles("/spate/data/");
  std::string prev_text;
  Timestamp prev_epoch = -1;
  for (const std::string& path : leaf_paths) {
    std::string name = path.substr(path.rfind('/') + 1);
    const bool delta = name.size() > 2 && name.ends_with(".d");
    if (delta) name.resize(name.size() - 2);
    const Timestamp epoch = ParseCompact(name);
    if (epoch < 0) {
      return Status::Corruption("recover: unparsable leaf path " + path);
    }

    // Sealed (fully decayed) days strictly before this leaf go in first.
    while (!day_summaries.empty() &&
           day_summaries.begin()->first + 86400 <= epoch) {
      auto it = day_summaries.begin();
      if (it->first > framework->index_.newest_epoch()) {
        SPATE_RETURN_IF_ERROR(
            framework->index_.AddSealedDay(it->first, std::move(it->second)));
      }
      day_summaries.erase(it);
    }

    Status status;
    std::string text;
    std::string blob;
    auto blob_read = framework->dfs_->ReadFile(path);
    if (!blob_read.ok()) {
      status = blob_read.status();
    } else {
      blob = std::move(*blob_read);
      if (delta) {
        if (prev_epoch != epoch - kEpochSeconds) {
          status = Status::Corruption("recover: delta chain broken at " + path);
        } else {
          status = framework->codec_->DecompressWithDictionary(prev_text, blob,
                                                               &text);
        }
      } else {
        // Plain (possibly chunked) leaf blob; recovery itself walks the
        // leaves serially, but chunk parts of one blob may fan out.
        status = ChunkedDecompress(blob, framework->pool_.get(), &text);
      }
    }
    Snapshot snapshot;
    if (status.ok()) status = ParseSnapshot(text, &snapshot);

    if (!status.ok()) {
      if (!tolerate || !DegradableFailure(status)) return status;
      // Placeholder: the epoch existed but its raw data is lost. It enters
      // the index already decayed (summary-only windows), and it breaks the
      // delta chain so stranded successors are skipped too.
      LeafNode lost;
      lost.epoch_start = epoch;
      lost.dfs_path = path;
      lost.decayed = true;
      lost.delta = delta;
      SPATE_RETURN_IF_ERROR(framework->index_.AddLeaf(std::move(lost)));
      framework->last_day_persisted_ = TruncateToDay(epoch);
      ++report.leaves_skipped;
      report.skipped_epochs.push_back(epoch);
      prev_text.clear();
      prev_epoch = -1;
      continue;
    }

    LeafNode leaf;
    leaf.epoch_start = epoch;
    leaf.dfs_path = path;
    leaf.stored_bytes = blob.size();
    leaf.delta = delta;
    leaf.summary.AddSnapshot(snapshot);
    SPATE_RETURN_IF_ERROR(framework->index_.AddLeaf(std::move(leaf)));
    framework->last_day_persisted_ = TruncateToDay(epoch);
    ++report.leaves_recovered;
    prev_text = std::move(text);
    prev_epoch = epoch;
    if (framework->options_.differential) {
      framework->last_ingest_text_ = prev_text;
      framework->last_ingest_epoch_ = epoch;
    }
  }
  // Any remaining sealed days newer than every resident leaf.
  for (auto& [day, summary] : day_summaries) {
    if (day > framework->index_.newest_epoch()) {
      SPATE_RETURN_IF_ERROR(
          framework->index_.AddSealedDay(day, std::move(summary)));
    }
  }
  return framework;
}

bool SpateFramework::IsKeyframe(Timestamp epoch_start) const {
  const int64_t interval = std::max(1, options_.keyframe_interval);
  return (epoch_start / kEpochSeconds) % interval == 0;
}

Status SpateFramework::Ingest(const Snapshot& snapshot) {
  last_ingest_ = IngestStats();

  // Storage layer: serialize + lossless compression (CPU). In differential
  // mode, non-keyframe snapshots compress against the previous epoch's
  // text; a gap in the stream forces a keyframe (the chain must be
  // contiguous).
  Stopwatch compress_timer;
  const std::string text = SerializeSnapshot(snapshot);
  const bool try_delta = options_.differential &&
                         codec_->SupportsDictionary() &&
                         !IsKeyframe(snapshot.epoch_start) &&
                         last_ingest_epoch_ ==
                             snapshot.epoch_start - kEpochSeconds;
  // Ingest fan-out: the snapshot text is partitioned into independent
  // compression jobs (content-driven, so the stored bytes do not depend on
  // the worker count) and compressed on the shared pool when one exists.
  std::string compressed;
  SPATE_RETURN_IF_ERROR(ChunkedCompress(*codec_, text,
                                        options_.parallelism.ingest_chunk_bytes,
                                        pool_.get(), &compressed));
  bool delta = false;
  if (try_delta) {
    // Deltas only pay off when cross-snapshot redundancy beats the
    // within-snapshot redundancy the plain codec already captures; keep
    // whichever encoding is smaller (the leaf records which one won).
    std::string delta_blob;
    SPATE_RETURN_IF_ERROR(
        codec_->CompressWithDictionary(last_ingest_text_, text, &delta_blob));
    if (delta_blob.size() < compressed.size()) {
      compressed = std::move(delta_blob);
      delta = true;
    }
  }
  last_ingest_.compress_seconds = compress_timer.ElapsedSeconds();

  // Replicated store (simulated disk time). Delta blobs get a ".d" path
  // suffix so recovery can tell the encodings apart.
  const double io_before = dfs_->stats().simulated_write_seconds;
  const std::string path =
      LeafPath(snapshot.epoch_start) + (delta ? ".d" : "");
  SPATE_RETURN_IF_ERROR(dfs_->WriteFile(path, compressed));
  // Optional per-leaf spatial sidecar.
  if (options_.leaf_spatial_index) {
    std::string sidecar;
    SPATE_RETURN_IF_ERROR(codec_->Compress(
        LeafSpatialIndex::Build(snapshot).Serialize(), &sidecar));
    SPATE_RETURN_IF_ERROR(dfs_->WriteFile(
        "/spate/spidx/" + FormatCompact(snapshot.epoch_start), sidecar));
  }
  last_ingest_.store_seconds =
      dfs_->stats().simulated_write_seconds - io_before;
  last_ingest_.stored_bytes = compressed.size();

  // Indexing layer: incremence + highlights (CPU).
  Stopwatch index_timer;
  LeafNode leaf;
  leaf.epoch_start = snapshot.epoch_start;
  leaf.dfs_path = path;
  leaf.stored_bytes = compressed.size();
  leaf.delta = delta;
  leaf.summary.AddSnapshot(snapshot);

  // Day rollover: persist the completed day's summary (the index bytes S_i).
  const Timestamp day = TruncateToDay(snapshot.epoch_start);
  if (options_.persist_summaries && last_day_persisted_ >= 0 &&
      day != last_day_persisted_) {
    const CoveringNode covering =
        index_.FindCovering(last_day_persisted_, last_day_persisted_ + 86400);
    if (covering.level == IndexLevel::kDay && covering.summary != nullptr) {
      const std::string key = FormatCompact(last_day_persisted_);
      // Index blobs go through the storage codec too (they are part of the
      // S_i share of S' and the paper minimizes the total).
      std::string blob;
      if (codec_->Compress(covering.summary->Serialize(), &blob).ok()) {
        dfs_->WriteFile("/spate/index/day/" + key.substr(0, 8), blob);
      }
    }
  }
  last_day_persisted_ = day;

  Status add = index_.AddLeaf(std::move(leaf));
  last_ingest_.index_seconds = index_timer.ElapsedSeconds();
  SPATE_RETURN_IF_ERROR(add);

  if (options_.differential) {
    last_ingest_text_ = text;
    last_ingest_epoch_ = snapshot.epoch_start;
  }
  if (options_.auto_decay) RunDecay(snapshot.epoch_start + kEpochSeconds);
  return Status::OK();
}

Result<std::string> SpateFramework::MaterializeLeafWith(
    const LeafNode& leaf, DecodeContext* ctx) const {
  if (leaf.decayed) {
    return Status::NotFound("leaf decayed: " + leaf.dfs_path);
  }
  if (ctx->cache_epoch == leaf.epoch_start) {
    return ctx->cache_text;
  }
  SPATE_ASSIGN_OR_RETURN(std::string blob, dfs_->ReadFile(leaf.dfs_path));
  std::string text;
  if (!leaf.delta) {
    // Plain (possibly chunked) blob; chunk parts may decode on the pool,
    // unless this context belongs to a scan worker that is itself one arm
    // of a fan-out (then decode_pool is null — no nested fan-out).
    SPATE_RETURN_IF_ERROR(ChunkedDecompress(blob, ctx->decode_pool, &text));
  } else {
    // Resolve the chain: the delta decodes against the previous epoch's
    // text (cached when scanning sequentially; otherwise at most
    // keyframe_interval - 1 recursive steps back to the keyframe).
    const Timestamp prev_epoch = leaf.epoch_start - kEpochSeconds;
    const LeafNode* prev = index_.FindLeaf(prev_epoch);
    if (prev == nullptr) {
      return Status::Corruption("delta leaf without predecessor: " +
                                leaf.dfs_path);
    }
    SPATE_ASSIGN_OR_RETURN(std::string prev_text,
                           MaterializeLeafWith(*prev, ctx));
    SPATE_RETURN_IF_ERROR(
        codec_->DecompressWithDictionary(prev_text, blob, &text));
  }
  // The one-entry cache exists to resolve delta chains against the
  // previous epoch in O(1); outside differential mode (and off any delta
  // chain — a recovered store can hold deltas the options no longer
  // advertise) it would only buy a full text copy per leaf.
  if (options_.differential || leaf.delta) {
    ctx->cache_epoch = leaf.epoch_start;
    ctx->cache_text = text;
  }
  return text;
}

Result<std::string> SpateFramework::MaterializeLeaf(const LeafNode& leaf) {
  return MaterializeLeafWith(leaf, &materialize_ctx_);
}

size_t SpateFramework::RunDecay(Timestamp now) {
  return RunDecay(options_.decay, now);
}

size_t SpateFramework::RunDecay(const DecayPolicy& policy, Timestamp now) {
  DecayPolicy effective = policy;
  // Never break delta chains, whatever policy the operator hands in.
  effective.horizon_alignment_seconds = std::max(
      effective.horizon_alignment_seconds,
      options_.decay.horizon_alignment_seconds);
  return index_.Decay(
      effective, now,
      [this](const LeafNode& leaf) {
        dfs_->DeleteFile(leaf.dfs_path);
        if (options_.leaf_spatial_index) {
          dfs_->DeleteFile("/spate/spidx/" + FormatCompact(leaf.epoch_start));
        }
      },
      [this](const DayNode& day) {
        // Second decay stage: the persisted day summary goes too.
        dfs_->DeleteFile("/spate/index/day/" +
                         FormatCompact(day.day_start).substr(0, 8));
      });
}

double SpateFramework::ThetaFor(IndexLevel level) const {
  switch (level) {
    case IndexLevel::kEpoch:
    case IndexLevel::kDay:
      return options_.theta_day;
    case IndexLevel::kMonth:
      return options_.theta_month;
    case IndexLevel::kYear:
    case IndexLevel::kRoot:
      return options_.theta_year;
  }
  return options_.theta_day;
}

Result<QueryResult> SpateFramework::Execute(const ExplorationQuery& query) {
  QueryResult result;
  if (query.window_begin >= query.window_end) {
    return Status::InvalidArgument("query window is empty");
  }

  if (index_.WindowFullyResolved(query.window_begin, query.window_end)) {
    // Exact path: decompress the covered leaves and filter.
    result.exact = true;
    result.served_from = IndexLevel::kEpoch;
    Status scan;
    if (options_.leaf_spatial_index && query.has_box) {
      last_scan_ = ScanStats();
      scan = ExecuteExactWithLeafIndex(query, &result);
    } else {
      scan = ScanWindow(
          query.window_begin, query.window_end,
          [&](const Snapshot& snapshot) {
            FilterSnapshotRows(snapshot, query, cells_, &result.cdr_rows,
                               &result.nms_rows);
          });
    }
    if (!scan.ok()) return scan;
    if (last_scan_.complete()) {
      result.summary = RestrictSummaryToBox(
          index_.SummarizeWindow(query.window_begin, query.window_end), query,
          cells_);
      result.highlights =
          result.summary.ExtractHighlights(ThetaFor(IndexLevel::kDay));
      return result;
    }
    // Storage faults hid at least one leaf (every replica unreadable): drop
    // the partial rows and degrade to the covering summary, exactly as if
    // those leaves had decayed.
    result.cdr_rows.clear();
    result.nms_rows.clear();
    result.degraded = true;
    result.skipped_epochs = last_scan_.skipped_epochs;
  }

  // Decayed (or fault-degraded) path: serve from the smallest covering
  // node's highlights.
  const CoveringNode covering =
      index_.FindCovering(query.window_begin, query.window_end);
  result.exact = false;
  result.served_from = covering.level;
  result.summary = RestrictSummaryToBox(*covering.summary, query, cells_);
  result.highlights =
      result.summary.ExtractHighlights(ThetaFor(covering.level));
  return result;
}

Status SpateFramework::ExecuteExactWithLeafIndex(
    const ExplorationQuery& query, QueryResult* result) {
  // Resolve the box to cell ids once, then use each leaf's sidecar to jump
  // straight to the matching rows. The leaf blob and its sidecar must both
  // be readable; degraded mode skips the epoch (recorded) when either has
  // lost every replica.
  const std::vector<std::string> in_box = cells_.CellsInBox(query.box);
  const std::unordered_set<std::string> wanted(in_box.begin(), in_box.end());
  return ScanLeaves(
      index_.LeavesInWindow(query.window_begin, query.window_end),
      [&](const LeafNode& leaf, const Snapshot& snapshot) -> Status {
        SPATE_ASSIGN_OR_RETURN(
            std::string sidecar_blob,
            dfs_->ReadFile("/spate/spidx/" + FormatCompact(leaf.epoch_start)));
        std::string serialized;
        SPATE_RETURN_IF_ERROR(
            ChunkedDecompress(sidecar_blob, nullptr, &serialized));
        LeafSpatialIndex sidecar;
        SPATE_RETURN_IF_ERROR(LeafSpatialIndex::Parse(serialized, &sidecar));

        auto take = [&](const std::vector<Record>& rows,
                        const std::vector<uint32_t>* positions, int ts_column,
                        std::vector<Record>* out) {
          if (positions == nullptr) return;
          for (uint32_t row : *positions) {
            if (row >= rows.size()) continue;
            const Timestamp ts =
                ParseCompact(FieldAsString(rows[row], ts_column));
            if (ts < query.window_begin || ts >= query.window_end) continue;
            out->push_back(rows[row]);
          }
        };
        for (const std::string& cell_id : in_box) {
          if (!wanted.count(cell_id)) continue;
          take(snapshot.cdr, sidecar.CdrRows(cell_id), kCdrTs,
               &result->cdr_rows);
          take(snapshot.nms, sidecar.NmsRows(cell_id), kNmsTs,
               &result->nms_rows);
        }
        return Status::OK();
      });
}

Status SpateFramework::ScanLeaves(
    const std::vector<const LeafNode*>& leaves,
    const std::function<Status(const LeafNode&, const Snapshot&)>& fn) {
  // Folds one leaf's outcome into the scan, in timestamp order, on the
  // calling thread. A degradable failure — every replica of the leaf (or of
  // its delta chain, or of its sidecar) unreadable — skips the epoch and
  // records it instead of failing the whole scan; callers consult
  // `last_scan_stats()`.
#ifndef NDEBUG
  // Fold-order hook: the serial fold must visit leaves in strictly
  // increasing epoch order regardless of how the decode fan-out scheduled
  // them — `last_scan_` folding and every caller depend on it.
  Timestamp debug_last_folded = -1;
#endif
  auto fold = [&](const LeafNode& leaf, Status status,
                  const Snapshot& snapshot) -> Result<bool> {
#ifndef NDEBUG
    SPATE_DCHECK_GT(leaf.epoch_start, debug_last_folded);
    debug_last_folded = leaf.epoch_start;
#endif
    if (status.ok()) status = fn(leaf, snapshot);
    if (!status.ok()) {
      if (options_.degraded_reads && DegradableFailure(status)) {
        last_scan_.skipped_epochs.push_back(leaf.epoch_start);
        return false;
      }
      return status;
    }
    ++last_scan_.leaves_scanned;
    return true;
  };

  const bool parallel =
      pool_ != nullptr &&
      leaves.size() >= static_cast<size_t>(std::max(
                           2, options_.parallelism.min_parallel_epochs));
  if (!parallel) {
    for (const LeafNode* leaf : leaves) {
      Snapshot snapshot;
      Status status;
      auto materialized = MaterializeLeaf(*leaf);
      if (!materialized.ok()) {
        status = materialized.status();
      } else {
        status = ParseSnapshot(*materialized, &snapshot);
      }
      SPATE_ASSIGN_OR_RETURN(bool ok, fold(*leaf, status, snapshot));
      (void)ok;
    }
    return Status::OK();
  }

  // Scan fan-out: decode leaves concurrently in bounded batches (capping
  // the number of simultaneously materialized snapshots), then fold each
  // batch serially in timestamp order. Workers take contiguous leaf ranges
  // with a private decode buffer, so delta chains still resolve against the
  // worker's previous leaf; stats are only touched in the serial fold — no
  // hot-path atomics, and the fold order (hence `last_scan_`) is identical
  // to the serial path's.
  struct Slot {
    Status status;
    Snapshot snapshot;
  };
  const size_t batch =
      static_cast<size_t>(options_.parallelism.worker_count) * 4;
  for (size_t base = 0; base < leaves.size(); base += batch) {
    const size_t count = std::min(batch, leaves.size() - base);
    std::vector<Slot> slots(count);
    pool_->ParallelFor(count, [&](size_t begin, size_t end) {
      DecodeContext ctx;  // per-worker buffer; no nested fan-out
      for (size_t i = begin; i < end; ++i) {
        auto materialized = MaterializeLeafWith(*leaves[base + i], &ctx);
        if (!materialized.ok()) {
          slots[i].status = materialized.status();
          continue;
        }
        slots[i].status = ParseSnapshot(*materialized, &slots[i].snapshot);
      }
    });
    for (size_t i = 0; i < count; ++i) {
      SPATE_ASSIGN_OR_RETURN(
          bool ok, fold(*leaves[base + i], slots[i].status, slots[i].snapshot));
      (void)ok;
    }
  }
  return Status::OK();
}

Status SpateFramework::ScanWindow(
    Timestamp begin, Timestamp end,
    const std::function<void(const Snapshot&)>& fn) {
  last_scan_ = ScanStats();
  return ScanLeaves(index_.LeavesInWindow(begin, end),
                    [&fn](const LeafNode&, const Snapshot& snapshot) {
                      fn(snapshot);
                      return Status::OK();
                    });
}

Result<NodeSummary> SpateFramework::AggregateWindow(Timestamp begin,
                                                    Timestamp end) {
  return index_.SummarizeWindow(begin, end);
}

uint64_t SpateFramework::StorageBytes() const {
  return dfs_->TotalLogicalBytes();
}

}  // namespace spate
