#include "core/spate_framework.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_set>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "compress/columnar.h"
#include "core/columnar_leaf.h"
#include "index/leaf_spatial.h"
#include "telco/schema.h"

namespace spate {
namespace {

/// Failures that degraded-read mode absorbs: the data is gone or currently
/// unreachable, but the in-memory summaries still answer for it. Anything
/// else (logic errors, bad arguments) stays fatal.
bool DegradableFailure(const Status& status) {
  return status.IsUnavailable() || status.IsCorruption() ||
         status.IsNotFound();
}

/// True when the leaf can hold rows of at least one wanted cell. The leaf
/// summary carries a per-cell entry for every cell id appearing in the
/// leaf's rows, so a negative answer is exact — skipping the leaf loses
/// nothing. Decayed leaves report true: they must still reach the fold so
/// the scan degrades instead of silently claiming completeness.
bool LeafIntersectsCells(const LeafNode& leaf,
                         const std::unordered_set<std::string>& wanted) {
  if (leaf.decayed) return true;
  for (const auto& [cell_id, stats] : leaf.summary.per_cell()) {
    (void)stats;
    if (wanted.count(cell_id) != 0) return true;
  }
  return false;
}

}  // namespace

SpateFramework::SpateFramework(SpateOptions options,
                               const std::vector<Record>& cell_rows)
    : SpateFramework(options,
                     std::make_shared<DistributedFileSystem>(options.dfs),
                     cell_rows, /*write_meta=*/true) {}

SpateFramework::SpateFramework(SpateOptions options,
                               std::shared_ptr<DistributedFileSystem> dfs,
                               const std::vector<Record>& cell_rows,
                               bool write_meta)
    : options_(std::move(options)),
      codec_(CodecRegistry::Get(options_.codec)),
      dfs_(std::move(dfs)),
      cells_(cell_rows),
      cell_rows_(cell_rows) {
  if (codec_ == nullptr) codec_ = CodecRegistry::Get("deflate");
  if (options_.parallelism.worker_count > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(options_.parallelism.worker_count));
    materialize_ctx_.decode_pool = pool_.get();
  }
  if (options_.fragment_cache_bytes > 0) {
    // A recovered framework starts with a fresh (empty, generation-0)
    // cache — "invalidate on Recover" for free, since both construction
    // paths come through here.
    fragment_cache_ =
        std::make_unique<FragmentCache>(options_.fragment_cache_bytes);
    materialize_ctx_.fragment_cache = fragment_cache_.get();
  }
  if (options_.differential) {
    // Deltas must never outlive the chain they decode against: decay only
    // at keyframe-group boundaries.
    options_.decay.horizon_alignment_seconds =
        std::max(1, options_.keyframe_interval) * kEpochSeconds;
  }
  if (write_meta) {
    // Persist the static cell inventory alongside the data.
    std::string cell_text = SerializeCells(cell_rows);
    std::string compressed;
    if (codec_->Compress(cell_text, &compressed).ok()) {
      // Best-effort: queries fall back to re-deriving cells from leaves.
      (void)dfs_->WriteFile("/spate/meta/cells", compressed);
    }
  }
}

std::string SpateFramework::LeafPath(Timestamp epoch_start) {
  const std::string key = FormatCompact(epoch_start);
  // /spate/data/YYYY/MM/DD/YYYYMMDDhhmm
  return "/spate/data/" + key.substr(0, 4) + "/" + key.substr(4, 2) + "/" +
         key.substr(6, 2) + "/" + key;
}

Result<std::unique_ptr<SpateFramework>> SpateFramework::Recover(
    SpateOptions options, std::shared_ptr<DistributedFileSystem> dfs) {
  if (dfs == nullptr) {
    return Status::InvalidArgument("recover: null dfs");
  }
  // 1. Cell inventory from /spate/meta/cells (codec taken from the blob's
  // envelope, in case the restart changed the configured codec).
  SPATE_ASSIGN_OR_RETURN(std::string cells_blob,
                         dfs->ReadFile("/spate/meta/cells"));
  if (cells_blob.empty()) {
    return Status::Corruption("recover: empty cell inventory");
  }
  const Codec* meta_codec =
      CodecRegistry::GetById(static_cast<uint8_t>(cells_blob[0]));
  if (meta_codec == nullptr) {
    return Status::Corruption("recover: unknown cell inventory codec");
  }
  std::string cells_text;
  SPATE_RETURN_IF_ERROR(meta_codec->Decompress(cells_blob, &cells_text));
  std::vector<Record> cell_rows;
  SPATE_RETURN_IF_ERROR(ParseCells(cells_text, &cell_rows));

  std::unique_ptr<SpateFramework> framework(new SpateFramework(
      std::move(options), std::move(dfs), cell_rows, /*write_meta=*/false));

  const bool tolerate = framework->options_.degraded_reads;
  RecoveryReport& report = framework->recovery_report_;

  // 2. Persisted day summaries (cover fully-decayed days). An unreadable
  // summary blob is dropped in degraded mode: the month/year roll-ups that
  // the resident leaves rebuild are the best remaining answer.
  std::map<Timestamp, NodeSummary> day_summaries;
  for (const std::string& path :
       framework->dfs_->ListFiles("/spate/index/day/")) {
    const Timestamp day = ParseCompact(path.substr(path.rfind('/') + 1));
    if (day < 0) continue;
    auto blob = framework->dfs_->ReadFile(path);
    Status status = blob.status();
    std::string serialized;
    NodeSummary summary;
    if (status.ok()) status = ChunkedDecompress(*blob, nullptr, &serialized);
    if (status.ok()) status = NodeSummary::Parse(serialized, &summary);
    // Injection lands on the per-summary status so degraded mode can absorb
    // it (skip + count) exactly like a real unreadable blob.
    SPATE_FAILPOINT_INJECT("index.load.day_summary", status);
    if (!status.ok()) {
      if (tolerate && DegradableFailure(status)) {
        ++report.day_summaries_skipped;
        continue;
      }
      return status;
    }
    ++report.day_summaries_recovered;
    day_summaries.emplace(day, std::move(summary));
  }

  // 3. Resident leaves, in time order (paths sort chronologically). Delta
  // blobs (".d" suffix) replay against the previous epoch's text. In
  // degraded mode a leaf whose blob cannot be read — or a delta stranded
  // because its chain lost an earlier link — becomes a decayed placeholder
  // so that queries over its window degrade to summaries instead of
  // silently claiming exactness.
  const std::vector<std::string> leaf_paths =
      framework->dfs_->ListFiles("/spate/data/");
  std::string prev_text;
  Timestamp prev_epoch = -1;
  for (const std::string& path : leaf_paths) {
    std::string name = path.substr(path.rfind('/') + 1);
    const bool delta = name.size() > 2 && name.ends_with(".d");
    if (delta) name.resize(name.size() - 2);
    const Timestamp epoch = ParseCompact(name);
    if (epoch < 0) {
      return Status::Corruption("recover: unparsable leaf path " + path);
    }

    // Sealed (fully decayed) days strictly before this leaf go in first.
    while (!day_summaries.empty() &&
           day_summaries.begin()->first + 86400 <= epoch) {
      auto it = day_summaries.begin();
      if (it->first > framework->index_.newest_epoch()) {
        SPATE_RETURN_IF_ERROR(
            framework->index_.AddSealedDay(it->first, std::move(it->second)));
      }
      day_summaries.erase(it);
    }

    Status status;
    std::string text;
    std::string blob;
    Snapshot snapshot;
    bool have_snapshot = false;
    auto blob_read = framework->dfs_->ReadFile(path);
    if (!blob_read.ok()) {
      status = blob_read.status();
    } else {
      blob = std::move(*blob_read);
      if (delta) {
        if (prev_epoch != epoch - kEpochSeconds) {
          status = Status::Corruption("recover: delta chain broken at " + path);
        } else {
          status = framework->codec_->DecompressWithDictionary(prev_text, blob,
                                                               &text);
        }
      } else if (IsColumnarBlob(blob)) {
        // Columnar leaf: reassemble the full snapshot, then re-serialize it
        // so a delta following it in a mixed store still finds chain text.
        const TableProjection all;
        status = DecodeColumnarLeaf(blob, all, all, /*wanted_cells=*/nullptr,
                                    &snapshot, /*bytes_decoded=*/nullptr);
        if (status.ok()) {
          have_snapshot = true;
          text = SerializeSnapshot(snapshot);
        }
      } else {
        // Plain (possibly chunked) leaf blob; recovery itself walks the
        // leaves serially, but chunk parts of one blob may fan out.
        status = ChunkedDecompress(blob, framework->pool_.get(), &text);
      }
    }
    if (status.ok() && !have_snapshot) status = ParseSnapshot(text, &snapshot);
    // Injection lands on the per-leaf status: degraded mode turns it into a
    // decayed placeholder (and breaks the delta chain), strict mode aborts.
    SPATE_FAILPOINT_INJECT("index.load.leaf", status);

    if (!status.ok()) {
      if (!tolerate || !DegradableFailure(status)) return status;
      // Placeholder: the epoch existed but its raw data is lost. It enters
      // the index already decayed (summary-only windows), and it breaks the
      // delta chain so stranded successors are skipped too.
      LeafNode lost;
      lost.epoch_start = epoch;
      lost.dfs_path = path;
      lost.decayed = true;
      lost.delta = delta;
      SPATE_RETURN_IF_ERROR(framework->index_.AddLeaf(std::move(lost)));
      framework->last_day_persisted_ = TruncateToDay(epoch);
      ++report.leaves_skipped;
      report.skipped_epochs.push_back(epoch);
      prev_text.clear();
      prev_epoch = -1;
      continue;
    }

    LeafNode leaf;
    leaf.epoch_start = epoch;
    leaf.dfs_path = path;
    leaf.stored_bytes = blob.size();
    leaf.delta = delta;
    leaf.summary.AddSnapshot(snapshot);
    // Rebuild the planner's decode-cost statistics from the decoded
    // snapshot; the sizes equal what the original ingest recorded.
    if (have_snapshot) {
      ComputeColumnarLeafStats(snapshot, &leaf.decode_stats);
    } else {
      leaf.decode_stats.raw_bytes = text.size();
    }
    SPATE_RETURN_IF_ERROR(framework->index_.AddLeaf(std::move(leaf)));
    framework->last_day_persisted_ = TruncateToDay(epoch);
    ++report.leaves_recovered;
    prev_text = std::move(text);
    prev_epoch = epoch;
    if (framework->options_.differential) {
      framework->last_ingest_text_ = prev_text;
      framework->last_ingest_epoch_ = epoch;
    }
  }
  // Any remaining sealed days newer than every resident leaf.
  for (auto& [day, summary] : day_summaries) {
    if (day > framework->index_.newest_epoch()) {
      SPATE_RETURN_IF_ERROR(
          framework->index_.AddSealedDay(day, std::move(summary)));
    }
  }
  return framework;
}

bool SpateFramework::IsKeyframe(Timestamp epoch_start) const {
  const int64_t interval = std::max(1, options_.keyframe_interval);
  return (epoch_start / kEpochSeconds) % interval == 0;
}

Status SpateFramework::Ingest(const Snapshot& snapshot) {
  // Snapshot admission: an injected failure here models the pipeline
  // rejecting the epoch before any compression or storage work.
  SPATE_FAILPOINT("core.ingest");
  last_ingest_ = IngestStats();

  // Storage layer: serialize + lossless compression (CPU). In differential
  // mode, non-keyframe snapshots compress against the previous epoch's
  // text; a gap in the stream forces a keyframe (the chain must be
  // contiguous).
  Stopwatch compress_timer;
  const bool columnar = options_.leaf_layout == LeafLayout::kColumnar;
  std::string compressed;
  bool delta = false;
  std::string text;
  LeafDecodeStats decode_stats;
  if (columnar) {
    // Columnar layout: shred the snapshot into per-attribute chunks (each
    // compressed independently, in parallel on the pool when one exists —
    // the stored bytes never depend on the worker count). Columnar leaves
    // are always full keyframes; differential deltas apply only to row text.
    SPATE_RETURN_IF_ERROR(EncodeColumnarLeaf(*codec_, snapshot, pool_.get(),
                                             &compressed, &decode_stats));
  } else {
    text = SerializeSnapshot(snapshot);
    decode_stats.raw_bytes = text.size();
    const bool try_delta = options_.differential &&
                           codec_->SupportsDictionary() &&
                           !IsKeyframe(snapshot.epoch_start) &&
                           last_ingest_epoch_ ==
                               snapshot.epoch_start - kEpochSeconds;
    // Ingest fan-out: the snapshot text is partitioned into independent
    // compression jobs (content-driven, so the stored bytes do not depend on
    // the worker count) and compressed on the shared pool when one exists.
    SPATE_RETURN_IF_ERROR(
        ChunkedCompress(*codec_, text, options_.parallelism.ingest_chunk_bytes,
                        pool_.get(), &compressed));
    if (try_delta) {
      // Deltas only pay off when cross-snapshot redundancy beats the
      // within-snapshot redundancy the plain codec already captures; keep
      // whichever encoding is smaller (the leaf records which one won).
      std::string delta_blob;
      SPATE_RETURN_IF_ERROR(
          codec_->CompressWithDictionary(last_ingest_text_, text, &delta_blob));
      if (delta_blob.size() < compressed.size()) {
        compressed = std::move(delta_blob);
        delta = true;
      }
    }
  }
  last_ingest_.compress_seconds = compress_timer.ElapsedSeconds();

  // Replicated store (simulated disk time). Delta blobs get a ".d" path
  // suffix so recovery can tell the encodings apart.
  const double io_before = dfs_->stats().simulated_write_seconds;
  const std::string path =
      LeafPath(snapshot.epoch_start) + (delta ? ".d" : "");
  SPATE_RETURN_IF_ERROR(dfs_->WriteFile(path, compressed));
  // Optional per-leaf spatial sidecar.
  if (options_.leaf_spatial_index) {
    std::string sidecar;
    SPATE_RETURN_IF_ERROR(codec_->Compress(
        LeafSpatialIndex::Build(snapshot).Serialize(), &sidecar));
    SPATE_RETURN_IF_ERROR(dfs_->WriteFile(
        "/spate/spidx/" + FormatCompact(snapshot.epoch_start), sidecar));
  }
  last_ingest_.store_seconds =
      dfs_->stats().simulated_write_seconds - io_before;
  last_ingest_.stored_bytes = compressed.size();

  // Indexing layer: incremence + highlights (CPU).
  Stopwatch index_timer;
  LeafNode leaf;
  leaf.epoch_start = snapshot.epoch_start;
  leaf.dfs_path = path;
  leaf.stored_bytes = compressed.size();
  leaf.delta = delta;
  leaf.summary.AddSnapshot(snapshot);
  leaf.decode_stats = std::move(decode_stats);

  // Day rollover: persist the completed day's summary (the index bytes S_i).
  const Timestamp day = TruncateToDay(snapshot.epoch_start);
  if (options_.persist_summaries && last_day_persisted_ >= 0 &&
      day != last_day_persisted_) {
    const CoveringNode covering =
        index_.FindCovering(last_day_persisted_, last_day_persisted_ + 86400);
    if (covering.level == IndexLevel::kDay && covering.summary != nullptr) {
      const std::string key = FormatCompact(last_day_persisted_);
      // Index blobs go through the storage codec too (they are part of the
      // S_i share of S' and the paper minimizes the total).
      std::string blob;
      if (codec_->Compress(covering.summary->Serialize(), &blob).ok()) {
        // Best-effort: a missing persisted summary is rebuilt on recovery.
        (void)dfs_->WriteFile("/spate/index/day/" + key.substr(0, 8), blob);
      }
    }
  }
  last_day_persisted_ = day;

  Status add = index_.AddLeaf(std::move(leaf));
  last_ingest_.index_seconds = index_timer.ElapsedSeconds();
  if (!add.ok()) {
    // Error-path consistency (surfaced by the failpoint walker): the blob
    // was already stored, but the index refused the leaf — without cleanup
    // it would be an orphan no query, decay or fsck ever reclaims. Deletion
    // is best-effort: a failed delete leaves a harmless orphan, never an
    // index entry without bytes.
    (void)dfs_->DeleteFile(path);
    if (options_.leaf_spatial_index) {
      (void)dfs_->DeleteFile("/spate/spidx/" +
                             FormatCompact(snapshot.epoch_start));
    }
    return add;
  }

  if (options_.differential) {
    if (columnar) {
      // A columnar leaf never serves as a delta dictionary: drop the chain
      // state so the next row-layout epoch starts a fresh keyframe.
      last_ingest_text_.clear();
      last_ingest_epoch_ = -1;
    } else {
      last_ingest_text_ = text;
      last_ingest_epoch_ = snapshot.epoch_start;
    }
  }
  // The store changed: advance the fragment-cache generation so no scan
  // serves bytes of the pre-ingest store state.
  if (fragment_cache_ != nullptr) fragment_cache_->BumpGeneration();
  if (options_.auto_decay) RunDecay(snapshot.epoch_start + kEpochSeconds);
  return Status::OK();
}

Result<std::string> SpateFramework::MaterializeLeafWith(
    const LeafNode& leaf, DecodeContext* ctx) const {
  if (leaf.decayed) {
    return Status::NotFound("leaf decayed: " + leaf.dfs_path);
  }
  if (ctx->cache_epoch == leaf.epoch_start) {
    return ctx->cache_text;
  }
  // Fragment cache: a row leaf's whole materialized text lives under the
  // "@row" pseudo-chunk (delta leaves cache their *resolved* text, so a
  // hit skips the entire chain replay). A hit skips the DFS read too and
  // charges no decoded bytes. Columnar leaves cache per chunk instead —
  // their "@row" probe always misses.
  if (ctx->fragment_cache != nullptr) {
    std::string cached;
    if (ctx->fragment_cache->Lookup(leaf.epoch_start, kRowFragmentName,
                                    ctx->fragment_generation, &cached)) {
      ++ctx->fragment_hits;
      ctx->fragment_bytes_saved += cached.size();
      if (options_.differential || leaf.delta) {
        ctx->cache_epoch = leaf.epoch_start;
        ctx->cache_text = cached;
      }
      return cached;
    }
  }
  SPATE_ASSIGN_OR_RETURN(std::string blob, dfs_->ReadFile(leaf.dfs_path));
  std::string text;
  if (!leaf.delta && IsColumnarBlob(blob)) {
    // Columnar leaf: a full materialization reassembles every column and
    // re-serializes to row text, so the delta-chain and parse paths above
    // this call work unchanged on mixed stores.
    Snapshot decoded;
    const TableProjection all;
    FragmentCacheScope fragments{ctx->fragment_cache, leaf.epoch_start,
                                 ctx->fragment_generation, 0, 0};
    SPATE_RETURN_IF_ERROR(DecodeColumnarLeaf(blob, all, all,
                                             /*wanted_cells=*/nullptr,
                                             &decoded, &ctx->bytes_decoded,
                                             &fragments));
    ctx->fragment_hits += fragments.hits;
    ctx->fragment_bytes_saved += fragments.bytes_saved;
    text = SerializeSnapshot(decoded);
  } else if (!leaf.delta) {
    // Plain (possibly chunked) blob; chunk parts may decode on the pool,
    // unless this context belongs to a scan worker that is itself one arm
    // of a fan-out (then decode_pool is null — no nested fan-out).
    SPATE_RETURN_IF_ERROR(ChunkedDecompress(blob, ctx->decode_pool, &text));
    ctx->bytes_decoded += text.size();
  } else {
    // Resolve the chain: the delta decodes against the previous epoch's
    // text (cached when scanning sequentially; otherwise at most
    // keyframe_interval - 1 recursive steps back to the keyframe).
    const Timestamp prev_epoch = leaf.epoch_start - kEpochSeconds;
    const LeafNode* prev = index_.FindLeaf(prev_epoch);
    if (prev == nullptr) {
      return Status::Corruption("delta leaf without predecessor: " +
                                leaf.dfs_path);
    }
    SPATE_ASSIGN_OR_RETURN(std::string prev_text,
                           MaterializeLeafWith(*prev, ctx));
    SPATE_RETURN_IF_ERROR(
        codec_->DecompressWithDictionary(prev_text, blob, &text));
    ctx->bytes_decoded += text.size();
  }
  // Admit the materialized row text (not the columnar re-serialization —
  // columnar leaves already cached per chunk above, and caching both would
  // spend the budget twice on the same leaf).
  if (ctx->fragment_cache != nullptr &&
      (leaf.delta || !IsColumnarBlob(blob))) {
    ctx->fragment_cache->Insert(leaf.epoch_start, kRowFragmentName,
                                ctx->fragment_generation, text);
  }
  // The one-entry cache exists to resolve delta chains against the
  // previous epoch in O(1); outside differential mode (and off any delta
  // chain — a recovered store can hold deltas the options no longer
  // advertise) it would only buy a full text copy per leaf.
  if (options_.differential || leaf.delta) {
    ctx->cache_epoch = leaf.epoch_start;
    ctx->cache_text = text;
  }
  return text;
}

Result<std::string> SpateFramework::MaterializeLeaf(const LeafNode& leaf) {
  return MaterializeLeafWith(leaf, &materialize_ctx_);
}

Status SpateFramework::DecodeLeafWith(const LeafNode& leaf,
                                      const LeafScanOptions& opts,
                                      DecodeContext* ctx,
                                      Snapshot* snapshot) const {
  if (!opts.restricted()) {
    // Unrestricted scan: the classic path, bit for bit.
    SPATE_ASSIGN_OR_RETURN(std::string text, MaterializeLeafWith(leaf, ctx));
    return ParseSnapshot(text, snapshot);
  }
  if (leaf.decayed) {
    return Status::NotFound("leaf decayed: " + leaf.dfs_path);
  }
  // Restriction via the reference semantics, for every path that has to
  // materialize full row text anyway.
  auto restrict_text = [&](const std::string& text) -> Status {
    Snapshot full;
    SPATE_RETURN_IF_ERROR(ParseSnapshot(text, &full));
    *snapshot = RestrictSnapshot(full, opts.cdr, opts.nms, opts.wanted_cells);
    return Status::OK();
  };
  if (leaf.delta || ctx->cache_epoch == leaf.epoch_start) {
    // Delta chains (and cache hits) only exist as full row text.
    SPATE_ASSIGN_OR_RETURN(std::string text, MaterializeLeafWith(leaf, ctx));
    return restrict_text(text);
  }
  // Fragment cache, row-text probe: a resident "@row" fragment restricts
  // in memory without the DFS read or any decompression. Columnar leaves
  // never have one (they cache per chunk), so a hit implies row layout and
  // `RestrictSnapshot` over the parsed text — the reference semantics the
  // columnar reader is byte-identical to either way.
  if (ctx->fragment_cache != nullptr) {
    std::string cached;
    if (ctx->fragment_cache->Lookup(leaf.epoch_start, kRowFragmentName,
                                    ctx->fragment_generation, &cached)) {
      ++ctx->fragment_hits;
      ctx->fragment_bytes_saved += cached.size();
      if (options_.differential) {
        ctx->cache_epoch = leaf.epoch_start;
        ctx->cache_text = cached;
      }
      return restrict_text(cached);
    }
  }
  SPATE_ASSIGN_OR_RETURN(std::string blob, dfs_->ReadFile(leaf.dfs_path));
  if (IsColumnarBlob(blob)) {
    // The pushdown proper: decode only the column chunks the projections
    // call for, and with a cell restriction only the matching rows. The
    // fragment scope serves/admits individual chunk plaintexts.
    FragmentCacheScope fragments{ctx->fragment_cache, leaf.epoch_start,
                                 ctx->fragment_generation, 0, 0};
    const Status status =
        DecodeColumnarLeaf(blob, opts.cdr, opts.nms, opts.wanted_cells,
                           snapshot, &ctx->bytes_decoded, &fragments);
    ctx->fragment_hits += fragments.hits;
    ctx->fragment_bytes_saved += fragments.bytes_saved;
    return status;
  }
  // Row leaf: full decode, then restrict in memory. Cache the text under
  // the same policy as MaterializeLeafWith, so a later delta in the scan
  // still resolves against this leaf in O(1).
  std::string text;
  SPATE_RETURN_IF_ERROR(ChunkedDecompress(blob, ctx->decode_pool, &text));
  ctx->bytes_decoded += text.size();
  if (ctx->fragment_cache != nullptr) {
    ctx->fragment_cache->Insert(leaf.epoch_start, kRowFragmentName,
                                ctx->fragment_generation, text);
  }
  if (options_.differential) {
    ctx->cache_epoch = leaf.epoch_start;
    ctx->cache_text = text;
  }
  return restrict_text(text);
}

size_t SpateFramework::RunDecay(Timestamp now) {
  return RunDecay(options_.decay, now);
}

size_t SpateFramework::RunDecay(const DecayPolicy& policy, Timestamp now) {
  DecayPolicy effective = policy;
  // Never break delta chains, whatever policy the operator hands in.
  effective.horizon_alignment_seconds = std::max(
      effective.horizon_alignment_seconds,
      options_.decay.horizon_alignment_seconds);
  const size_t evicted = index_.Decay(
      effective, now,
      [this](const LeafNode& leaf) {
        // Decay deletions are idempotent; an already-absent file is fine.
        (void)dfs_->DeleteFile(leaf.dfs_path);
        if (options_.leaf_spatial_index) {
          (void)dfs_->DeleteFile("/spate/spidx/" +
                                 FormatCompact(leaf.epoch_start));
        }
      },
      [this](const DayNode& day) {
        // Second decay stage: the persisted day summary goes too.
        (void)dfs_->DeleteFile("/spate/index/day/" +
                               FormatCompact(day.day_start).substr(0, 8));
      });
  // Evictions changed what the store can decode: invalidate by generation
  // (a no-op decay leaves the cache and its generation alone).
  if (evicted > 0 && fragment_cache_ != nullptr) {
    fragment_cache_->BumpGeneration();
  }
  return evicted;
}

double SpateFramework::ThetaFor(IndexLevel level) const {
  switch (level) {
    case IndexLevel::kEpoch:
    case IndexLevel::kDay:
      return options_.theta_day;
    case IndexLevel::kMonth:
      return options_.theta_month;
    case IndexLevel::kYear:
    case IndexLevel::kRoot:
      return options_.theta_year;
  }
  return options_.theta_day;
}

Result<QueryResult> SpateFramework::Execute(const ExplorationQuery& query) {
  QueryResult result;
  if (query.window_begin >= query.window_end) {
    return Status::InvalidArgument("query window is empty");
  }
  // A request that arrives already expired must not touch storage at all.
  if (cancel_ != nullptr) SPATE_RETURN_IF_ERROR(cancel_->Check());

  if (index_.WindowFullyResolved(query.window_begin, query.window_end)) {
    // Exact path: decompress the covered leaves and filter.
    result.exact = true;
    result.served_from = IndexLevel::kEpoch;
    Status scan;
    if (options_.leaf_spatial_index && query.has_box &&
        options_.leaf_layout == LeafLayout::kRow) {
      // Row-store sidecar path. On columnar stores the embedded "@spidx"
      // chunk supersedes the sidecar, so the projected scan wins below.
      last_scan_ = ScanStats();
      scan = ExecuteExactWithLeafIndex(query, &result);
    } else {
      // Projected scan: columnar leaves decode only the needed column
      // chunks / rows and box-disjoint leaves are skipped outright; the
      // streamed snapshots are already restricted, and FilterSnapshotRows
      // composes with that restriction to the same bytes the full-decode
      // path produces.
      scan = ScanWindowProjected(query, [&](const Snapshot& snapshot) {
        FilterSnapshotRows(snapshot, query, cells_, &result.cdr_rows,
                           &result.nms_rows);
      });
    }
    if (!scan.ok()) return scan;
    if (last_scan_.complete()) {
      result.summary = RestrictSummaryToBox(
          index_.SummarizeWindow(query.window_begin, query.window_end), query,
          cells_);
      result.highlights =
          result.summary.ExtractHighlights(ThetaFor(IndexLevel::kDay));
      return result;
    }
    // Storage faults hid at least one leaf (every replica unreadable): drop
    // the partial rows and degrade to the covering summary, exactly as if
    // those leaves had decayed.
    result.cdr_rows.clear();
    result.nms_rows.clear();
    result.degraded = true;
    result.skipped_epochs = last_scan_.skipped_epochs;
  }

  // Decayed (or fault-degraded) path: serve from the smallest covering
  // node's highlights.
  const CoveringNode covering =
      index_.FindCovering(query.window_begin, query.window_end);
  result.exact = false;
  result.served_from = covering.level;
  result.summary = RestrictSummaryToBox(*covering.summary, query, cells_);
  result.highlights =
      result.summary.ExtractHighlights(ThetaFor(covering.level));
  return result;
}

Status SpateFramework::ExecuteExactWithLeafIndex(
    const ExplorationQuery& query, QueryResult* result) {
  // Resolve the box to cell ids once, then use each leaf's sidecar to jump
  // straight to the matching rows. The leaf blob and its sidecar must both
  // be readable; degraded mode skips the epoch (recorded) when either has
  // lost every replica.
  const std::vector<std::string> in_box = cells_.CellsInBox(query.box);
  const std::unordered_set<std::string> wanted(in_box.begin(), in_box.end());
  // The sidecar's row positions index the full snapshot, so the leaves
  // materialize unrestricted; projection applies to the result rows only.
  const TableProjection cdr_projection =
      ResolveProjection(CdrSchema(), query.attributes);
  const TableProjection nms_projection =
      ResolveProjection(NmsSchema(), query.attributes);
  return ScanLeaves(
      index_.LeavesInWindow(query.window_begin, query.window_end),
      LeafScanOptions{},
      [&](const LeafNode& leaf, const Snapshot& snapshot) -> Status {
        SPATE_ASSIGN_OR_RETURN(
            std::string sidecar_blob,
            dfs_->ReadFile("/spate/spidx/" + FormatCompact(leaf.epoch_start)));
        std::string serialized;
        SPATE_RETURN_IF_ERROR(
            ChunkedDecompress(sidecar_blob, nullptr, &serialized));
        LeafSpatialIndex sidecar;
        SPATE_RETURN_IF_ERROR(LeafSpatialIndex::Parse(serialized, &sidecar));

        auto take = [&](const std::vector<Record>& rows,
                        const std::vector<uint32_t>* positions, int ts_column,
                        const TableProjection& projection,
                        std::vector<Record>* out) {
          if (positions == nullptr || projection.skip) return;
          for (uint32_t row : *positions) {
            if (row >= rows.size()) continue;
            const Timestamp ts =
                ParseCompact(FieldAsString(rows[row], ts_column));
            if (ts < query.window_begin || ts >= query.window_end) continue;
            out->push_back(ProjectRecord(rows[row], projection));
          }
        };
        for (const std::string& cell_id : in_box) {
          if (!wanted.count(cell_id)) continue;
          take(snapshot.cdr, sidecar.CdrRows(cell_id), kCdrTs, cdr_projection,
               &result->cdr_rows);
          take(snapshot.nms, sidecar.NmsRows(cell_id), kNmsTs, nms_projection,
               &result->nms_rows);
        }
        return Status::OK();
      });
}

Status SpateFramework::ScanLeaves(
    const std::vector<const LeafNode*>& leaves,
    const LeafScanOptions& opts,
    const std::function<Status(const LeafNode&, const Snapshot&)>& fn) {
  // Spatial leaf skipping: drop leaves whose summary proves them disjoint
  // from the wanted cells before any DFS read or decompression. The filter
  // runs up front on the calling thread, so the surviving scan — batching,
  // fold order, stats — is identical at every worker count.
  // Capture the store generation once per scan: no mutator can run during
  // a scan (externally synchronized surface), so every probe of this scan
  // keys against one consistent store state.
  const uint64_t fragment_generation =
      fragment_cache_ != nullptr ? fragment_cache_->generation() : 0;
  materialize_ctx_.fragment_generation = fragment_generation;
  std::vector<const LeafNode*> surviving;
  if (opts.skip_leaves && opts.wanted_cells != nullptr) {
    surviving.reserve(leaves.size());
    for (const LeafNode* leaf : leaves) {
      if (LeafIntersectsCells(*leaf, *opts.wanted_cells)) {
        surviving.push_back(leaf);
      } else {
        ++last_scan_.leaves_skipped_spatial;
      }
    }
  }
  const std::vector<const LeafNode*>& scan_leaves =
      (opts.skip_leaves && opts.wanted_cells != nullptr) ? surviving : leaves;
  // Folds one leaf's outcome into the scan, in timestamp order, on the
  // calling thread. A degradable failure — every replica of the leaf (or of
  // its delta chain, or of its sidecar) unreadable — skips the epoch and
  // records it instead of failing the whole scan; callers consult
  // `last_scan_stats()`.
#ifndef NDEBUG
  // Fold-order hook: the serial fold must visit leaves in strictly
  // increasing epoch order regardless of how the decode fan-out scheduled
  // them — `last_scan_` folding and every caller depend on it.
  Timestamp debug_last_folded = -1;
#endif
  auto fold = [&](const LeafNode& leaf, Status status,
                  const Snapshot& snapshot) -> Result<bool> {
#ifndef NDEBUG
    SPATE_DCHECK_GT(leaf.epoch_start, debug_last_folded);
    debug_last_folded = leaf.epoch_start;
#endif
    if (status.ok()) status = fn(leaf, snapshot);
    if (!status.ok()) {
      if (options_.degraded_reads && DegradableFailure(status)) {
        last_scan_.skipped_epochs.push_back(leaf.epoch_start);
        return false;
      }
      return status;
    }
    ++last_scan_.leaves_scanned;
    return true;
  };

  const bool parallel =
      pool_ != nullptr &&
      scan_leaves.size() >= static_cast<size_t>(std::max(
                                2, options_.parallelism.min_parallel_epochs));
  if (!parallel) {
    for (const LeafNode* leaf : scan_leaves) {
      // Cancellation check between leaf decodes: an expired token unwinds
      // here with kDeadlineExceeded — not a degradable failure, so the scan
      // aborts instead of marking the rest of the window skipped.
      if (cancel_ != nullptr) SPATE_RETURN_IF_ERROR(cancel_->Check());
      Snapshot snapshot;
      const uint64_t bytes_before = materialize_ctx_.bytes_decoded;
      const uint64_t hits_before = materialize_ctx_.fragment_hits;
      const uint64_t saved_before = materialize_ctx_.fragment_bytes_saved;
      const Status status =
          DecodeLeafWith(*leaf, opts, &materialize_ctx_, &snapshot);
      last_scan_.bytes_decoded +=
          materialize_ctx_.bytes_decoded - bytes_before;
      last_scan_.fragment_hits +=
          materialize_ctx_.fragment_hits - hits_before;
      last_scan_.bytes_decoded_saved +=
          materialize_ctx_.fragment_bytes_saved - saved_before;
      SPATE_ASSIGN_OR_RETURN(bool ok, fold(*leaf, status, snapshot));
      (void)ok;
    }
    return Status::OK();
  }

  // Scan fan-out: decode leaves concurrently in bounded batches (capping
  // the number of simultaneously materialized snapshots), then fold each
  // batch serially in timestamp order. Workers take contiguous leaf ranges
  // with a private decode buffer, so delta chains still resolve against the
  // worker's previous leaf; stats are only touched in the serial fold — no
  // hot-path atomics, and the fold order (hence `last_scan_`) is identical
  // to the serial path's.
  struct Slot {
    Status status;
    Snapshot snapshot;
    uint64_t bytes = 0;
    uint64_t fragment_hits = 0;
    uint64_t fragment_saved = 0;
  };
  const size_t batch =
      static_cast<size_t>(options_.parallelism.worker_count) * 4;
  for (size_t base = 0; base < scan_leaves.size(); base += batch) {
    // Between-batch cancellation check on the calling thread; workers also
    // poll per leaf below, so a mid-batch expiry stops further decodes and
    // surfaces through the serial fold as kDeadlineExceeded (which is not
    // degradable — the scan aborts rather than degrade).
    if (cancel_ != nullptr) SPATE_RETURN_IF_ERROR(cancel_->Check());
    const size_t count = std::min(batch, scan_leaves.size() - base);
    std::vector<Slot> slots(count);
    pool_->ParallelFor(count, [&](size_t begin, size_t end) {
      DecodeContext ctx;  // per-worker buffer; no nested fan-out
      ctx.fragment_cache = fragment_cache_.get();
      ctx.fragment_generation = fragment_generation;
      for (size_t i = begin; i < end; ++i) {
        if (cancel_ != nullptr) {
          slots[i].status = cancel_->Check();
          if (!slots[i].status.ok()) continue;  // skip decode, fold aborts
        }
        const uint64_t bytes_before = ctx.bytes_decoded;
        const uint64_t hits_before = ctx.fragment_hits;
        const uint64_t saved_before = ctx.fragment_bytes_saved;
        slots[i].status =
            DecodeLeafWith(*scan_leaves[base + i], opts, &ctx,
                           &slots[i].snapshot);
        slots[i].bytes = ctx.bytes_decoded - bytes_before;
        slots[i].fragment_hits = ctx.fragment_hits - hits_before;
        slots[i].fragment_saved = ctx.fragment_bytes_saved - saved_before;
      }
    });
    for (size_t i = 0; i < count; ++i) {
      last_scan_.bytes_decoded += slots[i].bytes;
      last_scan_.fragment_hits += slots[i].fragment_hits;
      last_scan_.bytes_decoded_saved += slots[i].fragment_saved;
      SPATE_ASSIGN_OR_RETURN(
          bool ok,
          fold(*scan_leaves[base + i], slots[i].status, slots[i].snapshot));
      (void)ok;
    }
  }
  return Status::OK();
}

Status SpateFramework::ScanWindow(
    Timestamp begin, Timestamp end,
    const std::function<void(const Snapshot&)>& fn) {
  last_scan_ = ScanStats();
  return ScanLeaves(index_.LeavesInWindow(begin, end), LeafScanOptions{},
                    [&fn](const LeafNode&, const Snapshot& snapshot) {
                      fn(snapshot);
                      return Status::OK();
                    });
}

Status SpateFramework::ScanWindowProjected(
    const ExplorationQuery& query,
    const std::function<void(const Snapshot&)>& fn) {
  last_scan_ = ScanStats();
  LeafScanOptions opts;
  opts.cdr = ScanProjection(CdrSchema(), query.attributes, kCdrTs, kCdrCellId);
  opts.nms = ScanProjection(NmsSchema(), query.attributes, kNmsTs, kNmsCellId);
  if (!query.want_cdr) {
    opts.cdr = TableProjection{/*all=*/false, /*skip=*/true, {}};
  }
  if (!query.want_nms) {
    opts.nms = TableProjection{/*all=*/false, /*skip=*/true, {}};
  }
  std::unordered_set<std::string> wanted;
  if (query.has_box) {
    const std::vector<std::string> in_box = cells_.CellsInBox(query.box);
    wanted.insert(in_box.begin(), in_box.end());
    opts.wanted_cells = &wanted;
    opts.skip_leaves = options_.spatial_leaf_skip;
  }
  return ScanLeaves(
      index_.LeavesInWindow(query.window_begin, query.window_end), opts,
      [&fn](const LeafNode&, const Snapshot& snapshot) {
        fn(snapshot);
        return Status::OK();
      });
}

Result<NodeSummary> SpateFramework::AggregateWindow(Timestamp begin,
                                                    Timestamp end) {
  return index_.SummarizeWindow(begin, end);
}

PlannerStatistics SpateFramework::CollectPlannerStatistics(
    Timestamp begin, Timestamp end) const {
  PlannerStatistics stats;
  // An injected probe failure reports `available = false`; the planner must
  // degrade to the naive full-scan plan, never crash or mis-cost.
  if (SPATE_FAILPOINT_HIT("sql.collect_statistics")) return stats;
  stats.available = true;
  stats.window_fully_resolved = index_.WindowFullyResolved(begin, end);
  stats.spatial_leaf_skip = options_.spatial_leaf_skip;
  const std::vector<const LeafNode*> leaves =
      index_.LeavesInWindow(begin, end);
  stats.leaves.reserve(leaves.size());
  const uint64_t generation =
      fragment_cache_ != nullptr ? fragment_cache_->generation() : 0;
  for (const LeafNode* leaf : leaves) {
    PlannerLeafInfo info{leaf->epoch_start, leaf->delta, &leaf->decode_stats,
                         &leaf->summary, 0};
    if (fragment_cache_ != nullptr) {
      info.fragment_cached_bytes =
          fragment_cache_->ResidentBytesFor(leaf->epoch_start, generation);
    }
    stats.leaves.push_back(info);
  }
  return stats;
}

uint64_t SpateFramework::StorageBytes() const {
  return dfs_->TotalLogicalBytes();
}

}  // namespace spate
