#include "core/framework.h"

#include "telco/schema.h"

namespace spate {
namespace {

/// True if the record's cell is inside the query box (or there is no box).
bool CellInBox(const std::string& cell_id, const ExplorationQuery& query,
               const CellDirectory& cells) {
  if (!query.has_box) return true;
  const CellInfo* info = cells.Find(cell_id);
  return info != nullptr && query.box.Contains(info->x, info->y);
}

}  // namespace

void FilterSnapshotRows(const Snapshot& snapshot,
                        const ExplorationQuery& query,
                        const CellDirectory& cells,
                        std::vector<Record>* cdr_out,
                        std::vector<Record>* nms_out) {
  for (const Record& row : snapshot.cdr) {
    const Timestamp ts = ParseCompact(FieldAsString(row, kCdrTs));
    if (ts < query.window_begin || ts >= query.window_end) continue;
    if (!CellInBox(FieldAsString(row, kCdrCellId), query, cells)) continue;
    cdr_out->push_back(row);
  }
  for (const Record& row : snapshot.nms) {
    const Timestamp ts = ParseCompact(FieldAsString(row, kNmsTs));
    if (ts < query.window_begin || ts >= query.window_end) continue;
    if (!CellInBox(FieldAsString(row, kNmsCellId), query, cells)) continue;
    nms_out->push_back(row);
  }
}

NodeSummary RestrictSummaryToBox(const NodeSummary& summary,
                                 const ExplorationQuery& query,
                                 const CellDirectory& cells) {
  if (!query.has_box) return summary;
  return summary.FilterCells([&](const std::string& cell_id) {
    const CellInfo* info = cells.Find(cell_id);
    return info != nullptr && query.box.Contains(info->x, info->y);
  });
}

}  // namespace spate
