#include "core/framework.h"

#include <algorithm>

#include "telco/schema.h"

namespace spate {
namespace {

/// True if the record's cell is inside the query box (or there is no box).
bool CellInBox(const std::string& cell_id, const ExplorationQuery& query,
               const CellDirectory& cells) {
  if (!query.has_box) return true;
  const CellInfo* info = cells.Find(cell_id);
  return info != nullptr && query.box.Contains(info->x, info->y);
}

/// Restricts one table's rows (row-order preserving) for RestrictSnapshot.
void RestrictTable(const std::vector<Record>& rows,
                   const TableProjection& projection, int cell_column,
                   const std::unordered_set<std::string>* wanted_cells,
                   std::vector<Record>* out) {
  if (projection.skip) return;
  for (const Record& row : rows) {
    if (wanted_cells != nullptr &&
        wanted_cells->count(FieldAsString(row, cell_column)) == 0) {
      continue;
    }
    out->push_back(ProjectRecord(row, projection));
  }
}

}  // namespace

bool TableProjection::Keeps(int column) const {
  if (skip) return false;
  if (all) return true;
  return std::binary_search(columns.begin(), columns.end(), column);
}

TableProjection ResolveProjection(
    const TableSchema& schema, const std::vector<std::string>& attributes) {
  TableProjection projection;
  if (attributes.empty()) return projection;  // all
  for (const std::string& name : attributes) {
    const int column = schema.IndexOf(name);
    if (column >= 0) projection.columns.push_back(column);
  }
  std::sort(projection.columns.begin(), projection.columns.end());
  projection.columns.erase(
      std::unique(projection.columns.begin(), projection.columns.end()),
      projection.columns.end());
  if (projection.columns.empty()) {
    projection.all = false;
    projection.skip = true;
  } else if (projection.columns.size() == schema.num_attributes()) {
    projection.columns.clear();  // every column named: same as all
  } else {
    projection.all = false;
  }
  return projection;
}

TableProjection ScanProjection(const TableSchema& schema,
                               const std::vector<std::string>& attributes,
                               int ts_column, int cell_column) {
  TableProjection projection = ResolveProjection(schema, attributes);
  if (projection.all || projection.skip) return projection;
  for (int forced : {ts_column, cell_column}) {
    auto it = std::lower_bound(projection.columns.begin(),
                               projection.columns.end(), forced);
    if (it == projection.columns.end() || *it != forced) {
      projection.columns.insert(it, forced);
    }
  }
  if (projection.columns.size() == schema.num_attributes()) {
    projection.columns.clear();
    projection.all = true;
  }
  return projection;
}

Record ProjectRecord(const Record& row, const TableProjection& projection) {
  if (projection.all) return row;
  Record projected(row.size());
  if (projection.skip) return projected;
  for (int column : projection.columns) {
    const size_t i = static_cast<size_t>(column);
    if (i < row.size()) projected[i] = row[i];
  }
  return projected;
}

Snapshot RestrictSnapshot(
    const Snapshot& snapshot, const TableProjection& cdr,
    const TableProjection& nms,
    const std::unordered_set<std::string>* wanted_cells) {
  Snapshot restricted;
  restricted.epoch_start = snapshot.epoch_start;
  RestrictTable(snapshot.cdr, cdr, kCdrCellId, wanted_cells,
                &restricted.cdr);
  RestrictTable(snapshot.nms, nms, kNmsCellId, wanted_cells,
                &restricted.nms);
  return restricted;
}

Status Framework::ScanWindowProjected(
    const ExplorationQuery& query,
    const std::function<void(const Snapshot&)>& fn) {
  TableProjection cdr =
      ScanProjection(CdrSchema(), query.attributes, kCdrTs, kCdrCellId);
  TableProjection nms =
      ScanProjection(NmsSchema(), query.attributes, kNmsTs, kNmsCellId);
  if (!query.want_cdr) cdr = TableProjection{/*all=*/false, /*skip=*/true, {}};
  if (!query.want_nms) nms = TableProjection{/*all=*/false, /*skip=*/true, {}};
  if (cdr.all && nms.all && !query.has_box) {
    // Nothing to restrict: stream the snapshots untouched (bit-identical
    // to ScanWindow, no copies).
    return ScanWindow(query.window_begin, query.window_end, fn);
  }
  std::unordered_set<std::string> wanted;
  if (query.has_box) {
    for (const std::string& cell_id : cells().CellsInBox(query.box)) {
      wanted.insert(cell_id);
    }
  }
  const std::unordered_set<std::string>* wanted_cells =
      query.has_box ? &wanted : nullptr;
  return ScanWindow(query.window_begin, query.window_end,
                    [&](const Snapshot& snapshot) {
                      fn(RestrictSnapshot(snapshot, cdr, nms, wanted_cells));
                    });
}

void FilterSnapshotRows(const Snapshot& snapshot,
                        const ExplorationQuery& query,
                        const CellDirectory& cells,
                        std::vector<Record>* cdr_out,
                        std::vector<Record>* nms_out) {
  const TableProjection cdr_projection =
      ResolveProjection(CdrSchema(), query.attributes);
  const TableProjection nms_projection =
      ResolveProjection(NmsSchema(), query.attributes);
  if (query.want_cdr && !cdr_projection.skip) {
    for (const Record& row : snapshot.cdr) {
      const Timestamp ts = ParseCompact(FieldAsString(row, kCdrTs));
      if (ts < query.window_begin || ts >= query.window_end) continue;
      if (!CellInBox(FieldAsString(row, kCdrCellId), query, cells)) continue;
      cdr_out->push_back(ProjectRecord(row, cdr_projection));
    }
  }
  if (query.want_nms && !nms_projection.skip) {
    for (const Record& row : snapshot.nms) {
      const Timestamp ts = ParseCompact(FieldAsString(row, kNmsTs));
      if (ts < query.window_begin || ts >= query.window_end) continue;
      if (!CellInBox(FieldAsString(row, kNmsCellId), query, cells)) continue;
      nms_out->push_back(ProjectRecord(row, nms_projection));
    }
  }
}

NodeSummary RestrictSummaryToBox(const NodeSummary& summary,
                                 const ExplorationQuery& query,
                                 const CellDirectory& cells) {
  if (!query.has_box) return summary;
  return summary.FilterCells([&](const std::string& cell_id) {
    const CellInfo* info = cells.Find(cell_id);
    return info != nullptr && query.box.Contains(info->x, info->y);
  });
}

}  // namespace spate
