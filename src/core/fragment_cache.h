#ifndef SPATE_CORE_FRAGMENT_CACHE_H_
#define SPATE_CORE_FRAGMENT_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace spate {

/// Pseudo-chunk name under which a row-layout leaf's whole materialized
/// text is cached (columnar leaves cache per real chunk name instead; the
/// '@' prefix cannot collide with the "c:"/"n:" column chunk names).
inline constexpr char kRowFragmentName[] = "@row";

/// Counters of one `FragmentCache` (also surfaced per scan through
/// `ScanStats::fragment_hits` / `bytes_decoded_saved`).
struct FragmentCacheStats {
  uint64_t fragment_hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Decompressed bytes the hits avoided producing again — the same
  /// currency as `ScanStats::bytes_decoded`, so "decode work removed by the
  /// cache" and "decode work done" subtract directly.
  uint64_t bytes_decoded_saved = 0;
  uint64_t resident_bytes = 0;
  uint64_t resident_entries = 0;
  uint64_t generation = 0;
};

/// Bounded, byte-budgeted LRU of *decoded leaf fragments*, keyed on
/// (leaf epoch, fragment name, store generation). A fragment is the unit
/// the decode path actually produces: one column chunk's plaintext for a
/// columnar leaf ("@meta", "@spidx", "c:<attr>", "n:<attr>" — the 0xCD
/// chunk names), or the whole materialized row text of a row-layout leaf
/// under the pseudo-chunk name "@row" (delta chains cache their fully
/// materialized result, so a hit skips the whole chain replay). Because the
/// key is a fragment and not a query, partially-overlapping and later
/// queries hit at fragment granularity where the whole-query `ResultCache`
/// would miss.
///
/// Generations are the invalidation mechanism: every mutator that can
/// change what a leaf's bytes decode to (`Ingest`, `Decay` evictions,
/// `Recover`) bumps the store generation, which *eagerly drops every
/// resident entry* — the cache invariant is that all resident fragments
/// carry the current generation (see DESIGN.md "Shared scans & fragment
/// cache" and the Fsck invariant-catalog discussion). The generation also
/// rides in the key, so a stale reader holding a pre-bump generation can
/// neither hit nor insert against the new store state.
///
/// Thread-safety: fully thread-safe. Rank "FragmentCache.mu"
/// (docs/LOCK_ORDER.md) is a leaf lock — held only across the map/LRU
/// bookkeeping of one call, never across DFS reads, decompression or any
/// other SPATE lock.
class FragmentCache {
 public:
  /// `byte_budget` bounds the sum of resident fragment payload bytes; an
  /// insert evicts from the LRU tail until the new entry fits. A fragment
  /// larger than the whole budget is not admitted at all.
  explicit FragmentCache(size_t byte_budget) : byte_budget_(byte_budget) {}

  FragmentCache(const FragmentCache&) = delete;
  FragmentCache& operator=(const FragmentCache&) = delete;

  /// The current store generation. Readers capture it once per scan (no
  /// mutator can run during a scan) and pass it to `Lookup`/`Insert`.
  uint64_t generation() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return generation_;
  }

  /// Advances the store generation and drops every resident entry
  /// (invalidate-by-generation; eager, so resident bytes never serve a
  /// superseded store state).
  void BumpGeneration() EXCLUDES(mu_);

  /// Copies the fragment into `*value` and returns true on a hit (which
  /// also front-moves the entry and counts `bytes_decoded_saved`); a
  /// generation mismatch is a miss.
  bool Lookup(Timestamp leaf_epoch, std::string_view fragment,
              uint64_t generation, std::string* value) EXCLUDES(mu_);

  /// Admits one decoded fragment. Silently ignored when `generation` is no
  /// longer current (a scan that raced a mutator must not resurrect stale
  /// bytes) or when the fragment alone exceeds the byte budget. Re-inserting
  /// an existing key refreshes its LRU position without double-counting.
  void Insert(Timestamp leaf_epoch, std::string_view fragment,
              uint64_t generation, std::string value) EXCLUDES(mu_);

  /// Sum of resident fragment bytes for one leaf at `generation` — the SQL
  /// planner's costing probe: decoded bytes the next scan of this leaf will
  /// *not* pay (a cached fragment prices at ~0).
  uint64_t ResidentBytesFor(Timestamp leaf_epoch, uint64_t generation) const
      EXCLUDES(mu_);

  FragmentCacheStats stats() const EXCLUDES(mu_);

  size_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    std::string key;
    Timestamp leaf_epoch = 0;
    std::string value;
  };

  static std::string MakeKey(Timestamp leaf_epoch, std::string_view fragment,
                             uint64_t generation);

  /// Drops LRU-tail entries until `need` more bytes fit in the budget.
  void EvictFor(size_t need) REQUIRES(mu_);

  const size_t byte_budget_;
  /// Rank "FragmentCache.mu" (docs/LOCK_ORDER.md): leaf lock over the
  /// LRU/map state below; never held across I/O, decode work or another
  /// SPATE lock.
  mutable Mutex mu_{"FragmentCache.mu"};
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  /// Front = most recently used.
  std::list<Entry> lru_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GUARDED_BY(mu_);
  uint64_t resident_bytes_ GUARDED_BY(mu_) = 0;
  /// Resident payload bytes per leaf epoch (the planner probe, O(1)).
  std::unordered_map<Timestamp, uint64_t> epoch_bytes_ GUARDED_BY(mu_);
  FragmentCacheStats stats_ GUARDED_BY(mu_);
};

/// Per-scan view of a `FragmentCache` that the decode helpers thread down
/// to the single per-chunk decode funnel (`DecodeChunk` in
/// core/columnar_leaf.cc and the row-text materialization in
/// core/spate_framework.cc): the cache handle, the leaf/generation to key
/// under, and hit counters the scan folds into its `ScanStats`. A null
/// `cache` (the default everywhere) disables caching with zero behavior
/// change. Not thread-safe — one scope per (worker, leaf).
struct FragmentCacheScope {
  FragmentCache* cache = nullptr;
  Timestamp leaf_epoch = 0;
  uint64_t generation = 0;
  uint64_t hits = 0;
  uint64_t bytes_saved = 0;
};

}  // namespace spate

#endif  // SPATE_CORE_FRAGMENT_CACHE_H_
