#include "core/fragment_cache.h"

#include <utility>

namespace spate {

std::string FragmentCache::MakeKey(Timestamp leaf_epoch,
                                   std::string_view fragment,
                                   uint64_t generation) {
  std::string key = std::to_string(leaf_epoch);
  key.push_back('\x1f');
  key += std::to_string(generation);
  key.push_back('\x1f');
  key.append(fragment.data(), fragment.size());
  return key;
}

void FragmentCache::BumpGeneration() {
  MutexLock lock(&mu_);
  ++generation_;
  stats_.evictions += lru_.size();
  lru_.clear();
  index_.clear();
  epoch_bytes_.clear();
  resident_bytes_ = 0;
}

bool FragmentCache::Lookup(Timestamp leaf_epoch, std::string_view fragment,
                           uint64_t generation, std::string* value) {
  MutexLock lock(&mu_);
  if (generation != generation_) {
    ++stats_.misses;
    return false;
  }
  const auto it = index_.find(MakeKey(leaf_epoch, fragment, generation));
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *value = it->second->value;
  ++stats_.fragment_hits;
  stats_.bytes_decoded_saved += value->size();
  return true;
}

void FragmentCache::Insert(Timestamp leaf_epoch, std::string_view fragment,
                           uint64_t generation, std::string value) {
  MutexLock lock(&mu_);
  // A stale writer (captured its generation before a mutator bumped it)
  // must not resurrect bytes of the superseded store state.
  if (generation != generation_) return;
  if (value.size() > byte_budget_) return;
  std::string key = MakeKey(leaf_epoch, fragment, generation);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    resident_bytes_ -= it->second->value.size();
    epoch_bytes_[leaf_epoch] -= it->second->value.size();
    resident_bytes_ += value.size();
    epoch_bytes_[leaf_epoch] += value.size();
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    EvictFor(0);
    return;
  }
  EvictFor(value.size());
  lru_.push_front(Entry{key, leaf_epoch, std::move(value)});
  resident_bytes_ += lru_.front().value.size();
  epoch_bytes_[leaf_epoch] += lru_.front().value.size();
  index_.emplace(std::move(key), lru_.begin());
  ++stats_.insertions;
}

void FragmentCache::EvictFor(size_t need) {
  while (!lru_.empty() && resident_bytes_ + need > byte_budget_) {
    const Entry& victim = lru_.back();
    resident_bytes_ -= victim.value.size();
    const auto eb = epoch_bytes_.find(victim.leaf_epoch);
    eb->second -= victim.value.size();
    if (eb->second == 0) epoch_bytes_.erase(eb);
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

uint64_t FragmentCache::ResidentBytesFor(Timestamp leaf_epoch,
                                         uint64_t generation) const {
  MutexLock lock(&mu_);
  if (generation != generation_) return 0;
  const auto it = epoch_bytes_.find(leaf_epoch);
  return it == epoch_bytes_.end() ? 0 : it->second;
}

FragmentCacheStats FragmentCache::stats() const {
  MutexLock lock(&mu_);
  FragmentCacheStats out = stats_;
  out.resident_bytes = resident_bytes_;
  out.resident_entries = lru_.size();
  out.generation = generation_;
  return out;
}

}  // namespace spate
