#ifndef SPATE_CORE_SPATE_FRAMEWORK_H_
#define SPATE_CORE_SPATE_FRAMEWORK_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "compress/chunked.h"
#include "compress/codec.h"
#include "core/fragment_cache.h"
#include "core/framework.h"

namespace spate {

namespace check {
struct FsckReport;
}  // namespace check

/// Knobs of the parallel snapshot pipeline (ingest compression fan-out and
/// multi-epoch scan decode fan-out). The stand-in for the implicit Hadoop
/// parallelism the paper's storage layer rides on.
struct ParallelismOptions {
  /// Worker threads shared by ingest and scans. 1 (the default) keeps the
  /// whole pipeline on the calling thread — no pool is created and every
  /// code path executes exactly as the pre-parallel framework did.
  int worker_count = 1;
  /// Minimum in-window leaves before a scan fans out; shorter windows stay
  /// serial (fan-out overhead beats the win on a couple of leaves).
  int min_parallel_epochs = 4;
  /// Serialized-text bytes per independent ingest compression job. The
  /// partition of a snapshot into jobs is a pure function of its text and
  /// this knob — never of `worker_count` — so stored leaf bytes and CRCs
  /// are bit-identical at every worker count (see compress/chunked.h).
  size_t ingest_chunk_bytes = kDefaultChunkBytes;
};

/// On-DFS layout of a leaf (one epoch's snapshot).
enum class LeafLayout {
  /// Serialized row text through the codec envelope / 0xCF chunked
  /// container — the original format, bit-compatible with every existing
  /// store.
  kRow,
  /// 0xCD columnar container (core/columnar_leaf.h): per-attribute column
  /// chunks compressed independently, so projected scans decode only the
  /// columns covering `ExplorationQuery::attributes` and bounding-box
  /// scans jump via the embedded row-position lists.
  kColumnar,
};

/// Configuration of the SPATE framework.
struct SpateOptions {
  /// Storage-layer codec name ("deflate" is the paper's pick, Section IV-C).
  std::string codec = "deflate";
  DfsOptions dfs;
  DecayPolicy decay;
  /// Run the decaying module after every ingest (stream-time driven).
  bool auto_decay = true;
  /// Persist day-node summaries to the DFS (the index share S_i of S').
  bool persist_summaries = true;
  /// Highlight frequency thresholds theta per resolution level
  /// (Section V-B: lower thresholds for higher resolution levels).
  double theta_day = 0.05;
  double theta_month = 0.02;
  double theta_year = 0.01;

  /// Differential storage (the paper's Section IX-B future work): store
  /// most snapshots as deltas against the previous epoch's text, with a
  /// full keyframe every `keyframe_interval` epochs. Requires a codec with
  /// dictionary support (deflate); decay then evicts whole keyframe groups.
  bool differential = false;
  int keyframe_interval = 8;

  /// Storage layout of newly written leaves. `kRow` (the default) stays
  /// bit-compatible with existing stores; `kColumnar` enables projection
  /// pushdown in the scan path. Readers dispatch on each blob's leading
  /// byte, so mixed stores (e.g. a recovered row store continued in
  /// columnar mode) work transparently. Columnar leaves are always full
  /// keyframes: `differential` deltas apply only to row-layout leaves.
  LeafLayout leaf_layout = LeafLayout::kRow;

  /// Whole-leaf spatial skipping: a bounding-box scan consults each leaf's
  /// in-memory summary cell-id set (exact: the summary carries an entry for
  /// every cell appearing in the leaf's rows) and skips leaves proven
  /// disjoint from the box before any DFS read or decompression. Applies
  /// to both leaf layouts; `ScanStats::leaves_skipped_spatial` counts the
  /// wins.
  bool spatial_leaf_skip = true;

  /// Optional per-leaf spatial index (Section V-A's discussed-and-rejected
  /// design): writes a per-snapshot cell->rows sidecar so bounding-box
  /// queries skip non-matching rows, at the price of extra storage.
  /// Superseded by the embedded "@spidx" chunk when `leaf_layout` is
  /// `kColumnar` (the exact-query sidecar path only engages on row
  /// stores).
  bool leaf_spatial_index = false;

  /// Degraded reads: when a leaf's every replica is unreadable (datanodes
  /// down, all copies corrupt), treat it like a decayed leaf — `Execute`
  /// falls back to the covering highlight summary, `ScanWindow` skips it
  /// (reporting the epoch in `last_scan_stats()`), and `Recover` keeps
  /// going past it. When false, storage faults surface as hard errors.
  bool degraded_reads = true;

  /// Parallel snapshot pipeline (ingest + scan fan-out). Defaults to fully
  /// serial operation.
  ParallelismOptions parallelism;

  /// Byte budget of the decoded-fragment cache (core/fragment_cache.h):
  /// scans serve column chunks / row texts they already decoded from
  /// memory, keyed (leaf epoch, chunk name, store generation), and
  /// `Ingest`/`RunDecay` evictions/`Recover` invalidate by bumping the
  /// generation. 0 (the default) disables the cache entirely — every
  /// existing byte-accounting expectation holds unchanged. Results are
  /// identical either way; only `ScanStats::bytes_decoded` (and its
  /// `fragment_hits`/`bytes_decoded_saved` counters) move.
  size_t fragment_cache_bytes = 0;
};

/// Outcome of `Recover()` (degraded-recovery accounting): what was rebuilt
/// from the surviving DFS files and what had to be skipped.
struct RecoveryReport {
  size_t leaves_recovered = 0;
  /// Leaves whose blob was unreadable/corrupt, or stranded deltas whose
  /// chain lost its keyframe; each becomes a decayed placeholder leaf.
  size_t leaves_skipped = 0;
  size_t day_summaries_recovered = 0;
  /// Persisted day summaries that could not be read back.
  size_t day_summaries_skipped = 0;
  /// Epoch starts of the skipped leaves.
  std::vector<Timestamp> skipped_epochs;
};

/// The SPATE framework (the paper's contribution): lossless compression of
/// arriving snapshots on a replicated DFS, a multi-resolution spatiotemporal
/// index with materialized highlights, and decaying of aged raw data.
///
/// Concurrency: the framework parallelizes *internally* (per
/// `ParallelismOptions`) but its public surface is externally synchronized —
/// one `Ingest`/`Execute`/`ScanWindow`/`RunDecay` call at a time, like the
/// serial framework. The fan-out happens below the API: ingest compresses
/// one snapshot's chunks concurrently, scans decode in-window leaves
/// concurrently, and both fold their stats back before returning. See
/// DESIGN.md "Concurrency model" for the per-class contracts.
class SPATE_EXTERNALLY_SYNCHRONIZED SpateFramework : public Framework {
 public:
  /// `cell_rows` is the static CELL inventory (also persisted to the DFS).
  SpateFramework(SpateOptions options, const std::vector<Record>& cell_rows);

  /// Recovery: rebuilds a framework from an existing DFS (e.g. after a
  /// process restart). The cell inventory is read back from
  /// /spate/meta/cells; resident leaves are decompressed in time order
  /// (delta chains replay from their keyframes) and their summaries
  /// recomputed; fully-decayed days are restored from their persisted day
  /// summaries. Days that were only partially decayed keep the stats of
  /// their resident leaves (the evicted leaves' raw data is gone by
  /// design).
  ///
  /// With `degraded_reads` (the default) recovery also tolerates storage
  /// faults: a leaf whose blob is unreadable (every replica corrupt or on a
  /// dead datanode) — or a delta stranded by such a loss earlier in its
  /// chain — is re-inserted as a decayed placeholder instead of aborting
  /// the rebuild, and unreadable persisted day summaries are dropped.
  /// `recovery_report()` itemizes everything skipped. Only the cell
  /// inventory remains load-bearing: if /spate/meta/cells is unreadable the
  /// recovery fails.
  static Result<std::unique_ptr<SpateFramework>> Recover(
      SpateOptions options, std::shared_ptr<DistributedFileSystem> dfs);

  /// What the last `Recover()` skipped (empty for a framework built by the
  /// public constructor).
  const RecoveryReport& recovery_report() const { return recovery_report_; }

  /// Shared handle to the underlying DFS (pass to `Recover` to simulate a
  /// restart over surviving storage).
  std::shared_ptr<DistributedFileSystem> shared_dfs() { return dfs_; }

  std::string_view Name() const override { return "SPATE"; }
  Status Ingest(const Snapshot& snapshot) override;
  const IngestStats& last_ingest_stats() const override {
    return last_ingest_;
  }
  Result<QueryResult> Execute(const ExplorationQuery& query) override;
  Status ScanWindow(
      Timestamp begin, Timestamp end,
      const std::function<void(const Snapshot&)>& fn) override;
  /// Projection + spatial pushdown: columnar leaves decode only the column
  /// chunks covering the query's attributes (plus ts/cell id for the
  /// predicates) and, with a box, materialize only the matching rows via
  /// the embedded row-position lists; row leaves decode fully and restrict
  /// in memory. Either way the streamed snapshots are byte-identical to
  /// the default implementation's, except that leaves proven disjoint from
  /// the box are skipped outright (`fn` not called;
  /// `last_scan_stats().leaves_skipped_spatial` counts them).
  Status ScanWindowProjected(
      const ExplorationQuery& query,
      const std::function<void(const Snapshot&)>& fn) override;
  const ScanStats& last_scan_stats() const override { return last_scan_; }
  Result<NodeSummary> AggregateWindow(Timestamp begin,
                                      Timestamp end) override;
  /// Planner statistics straight from the temporal index: one entry per
  /// non-decayed in-window leaf with its layout, exact per-chunk decode
  /// costs (recorded at ingest / recovery) and spatial summary.
  PlannerStatistics CollectPlannerStatistics(Timestamp begin,
                                             Timestamp end) const override;
  uint64_t StorageBytes() const override;
  DistributedFileSystem& dfs() override { return *dfs_; }
  const CellDirectory& cells() const override { return cells_; }
  const std::vector<Record>& cell_rows() const override {
    return cell_rows_;
  }
  /// Cooperative cancellation: scans poll the token between leaf decodes
  /// (serial path) / between batches and inside workers (parallel path) and
  /// unwind with `kDeadlineExceeded` — which is deliberately *not* a
  /// degradable failure, so an expired query aborts instead of skipping the
  /// rest of its window as "degraded".
  void SetCancelToken(const CancelToken* token) override { cancel_ = token; }

  /// The underlying temporal index (inspection / advanced exploration).
  const TemporalIndex& index() const { return index_; }

  /// Manually triggers the decaying module at stream time `now`; returns
  /// the number of leaves evicted.
  size_t RunDecay(Timestamp now);

  /// Same, with an explicit policy (operator-driven decay, Section V-C:
  /// "operators chose the rate at which the temporal decaying policy
  /// becomes effective").
  size_t RunDecay(const DecayPolicy& policy, Timestamp now);

  const SpateOptions& options() const { return options_; }

  /// The pipeline's shared worker pool (nullptr when `worker_count == 1`).
  /// Exposed so analytics tasks can reuse it instead of spawning their own;
  /// see DESIGN.md "Concurrency model" for what may run on it concurrently.
  ThreadPool* pool() { return pool_.get(); }

  /// Highlight threshold for a level (theta_i, Section V-B).
  double ThetaFor(IndexLevel level) const;

  /// The decoded-fragment cache (nullptr when `fragment_cache_bytes == 0`).
  /// Mutators (`Ingest`, decay evictions, `Recover`) bump its generation,
  /// dropping every resident fragment; scans consult and feed it below the
  /// decode funnel. Exposed for stats surfacing (`spate_cli scan-stats`,
  /// the serving tier) and the planner probe.
  FragmentCache* fragment_cache() const { return fragment_cache_.get(); }

  /// The current store generation (0 on frameworks without a fragment
  /// cache): bumped by every mutator that can change what stored leaf
  /// bytes decode to.
  uint64_t store_generation() const {
    return fragment_cache_ != nullptr ? fragment_cache_->generation() : 0;
  }

  /// Deep cross-layer verifier (`spate_cli fsck`): replica integrity and
  /// replication factor on the DFS, container framing and decodability of
  /// every stored blob, index shape, highlight roll-up consistency and
  /// decay monotonicity. See src/check/fsck.h for the invariant catalog.
  /// Defined in the `spate_check` library — link it to call this.
  check::FsckReport Fsck() const;

 private:
  /// DFS path of the raw (compressed) snapshot for an epoch.
  static std::string LeafPath(Timestamp epoch_start);

  /// Per-worker leaf-decode state: a one-entry materialization cache (so a
  /// sequential run over contiguous leaves resolves each delta against its
  /// already-decoded predecessor) plus the pool — if any — that chunked
  /// single-blob decodes may fan out on. Workers of a parallel scan each
  /// own one with `decode_pool == nullptr` (fan out across leaves OR across
  /// chunk parts, never both nested).
  struct DecodeContext {
    Timestamp cache_epoch = -1;
    std::string cache_text;
    ThreadPool* decode_pool = nullptr;
    /// Cumulative decompressed bytes this context produced (cache hits add
    /// nothing); scans fold per-leaf deltas into
    /// `ScanStats::bytes_decoded`.
    uint64_t bytes_decoded = 0;
    /// Fragment cache handle + the store generation captured at scan start
    /// (no mutator runs during a scan, so it is stable); null/0 disables.
    FragmentCache* fragment_cache = nullptr;
    uint64_t fragment_generation = 0;
    /// Fragment-cache wins this context observed; scans fold per-leaf
    /// deltas into `ScanStats::fragment_hits`/`bytes_decoded_saved`.
    uint64_t fragment_hits = 0;
    uint64_t fragment_bytes_saved = 0;
  };

  /// What a scan materializes per leaf: the per-table column projections
  /// (scan-level, i.e. always including ts and cell id), an optional cell
  /// restriction, and whether whole leaves may be skipped on their
  /// summary's cell-id set. The default decodes everything — bit-identical
  /// to the pre-columnar scan path.
  struct LeafScanOptions {
    TableProjection cdr;
    TableProjection nms;
    /// When non-null, only rows of these cells are materialized.
    const std::unordered_set<std::string>* wanted_cells = nullptr;
    /// Skip leaves whose summary shares no cell with `wanted_cells`.
    bool skip_leaves = false;

    bool restricted() const {
      return !cdr.all || !nms.all || wanted_cells != nullptr;
    }
  };

  /// Reads + decodes the raw text of one leaf into `ctx`'s cache, resolving
  /// delta chains back to their keyframe (columnar blobs decode fully and
  /// re-serialize, so a delta can chain off a columnar predecessor in a
  /// mixed store). Touches no framework state except `ctx`, the
  /// (thread-safe) DFS and the const index/codec — the parallel scan path
  /// calls it concurrently with per-worker contexts.
  Result<std::string> MaterializeLeafWith(const LeafNode& leaf,
                                          DecodeContext* ctx) const;

  /// Serial-path wrapper over the framework-owned context.
  Result<std::string> MaterializeLeaf(const LeafNode& leaf);

  /// Decodes one leaf into a (possibly projected/restricted) snapshot per
  /// `opts`. Columnar blobs decode exactly the chunks the options call
  /// for; row blobs materialize their full text and restrict in memory.
  Status DecodeLeafWith(const LeafNode& leaf, const LeafScanOptions& opts,
                        DecodeContext* ctx, Snapshot* snapshot) const;

  /// Decodes every leaf in `leaves` per `opts` and hands (leaf, snapshot)
  /// pairs to `fn` on the calling thread, in timestamp order. Fans the
  /// decode out on the pool when it exists and the window spans at least
  /// `min_parallel_epochs` leaves; decode failures and degradable `fn`
  /// statuses feed `last_scan_` via per-worker counters folded in leaf
  /// order. `fn` returning a degradable status skips that epoch.
  Status ScanLeaves(
      const std::vector<const LeafNode*>& leaves,
      const LeafScanOptions& opts,
      const std::function<Status(const LeafNode&, const Snapshot&)>& fn);

  /// True if the snapshot at `epoch_start` starts a keyframe group.
  bool IsKeyframe(Timestamp epoch_start) const;

  /// Exact-path evaluation using the per-leaf spatial sidecars.
  Status ExecuteExactWithLeafIndex(const ExplorationQuery& query,
                                   QueryResult* result);

  /// Shared construction guts for the public ctor and `Recover`.
  SpateFramework(SpateOptions options,
                 std::shared_ptr<DistributedFileSystem> dfs,
                 const std::vector<Record>& cell_rows, bool write_meta);

  SpateOptions options_;
  const Codec* codec_;  // owned by the registry
  std::shared_ptr<DistributedFileSystem> dfs_;
  /// Shared worker pool of the parallel pipeline (null when serial).
  std::unique_ptr<ThreadPool> pool_;
  CellDirectory cells_;
  std::vector<Record> cell_rows_;
  TemporalIndex index_;
  IngestStats last_ingest_;
  ScanStats last_scan_;
  RecoveryReport recovery_report_;
  Timestamp last_day_persisted_ = -1;
  /// Installed by `SetCancelToken`; polled by scans. Not owned.
  const CancelToken* cancel_ = nullptr;
  // Differential-mode state.
  std::string last_ingest_text_;
  Timestamp last_ingest_epoch_ = -1;
  /// Serial-path materialization cache (parallel scans use per-worker ones).
  DecodeContext materialize_ctx_;
  /// Decoded-fragment cache (null when `fragment_cache_bytes == 0`). The
  /// cache object is internally synchronized; the generation discipline —
  /// bump on every mutator, capture once per scan — follows the
  /// framework's external synchronization.
  std::unique_ptr<FragmentCache> fragment_cache_;
};

}  // namespace spate

#endif  // SPATE_CORE_SPATE_FRAMEWORK_H_
