# Empty compiler generated dependencies file for bench_ablation_highlights.
# This may be replaced when dependencies are built.
