file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_highlights.dir/bench_ablation_highlights.cc.o"
  "CMakeFiles/bench_ablation_highlights.dir/bench_ablation_highlights.cc.o.d"
  "bench_ablation_highlights"
  "bench_ablation_highlights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_highlights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
