# Empty compiler generated dependencies file for bench_ablation_leaf_spatial.
# This may be replaced when dependencies are built.
