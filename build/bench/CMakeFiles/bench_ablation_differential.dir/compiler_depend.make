# Empty compiler generated dependencies file for bench_ablation_differential.
# This may be replaced when dependencies are built.
