file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_differential.dir/bench_ablation_differential.cc.o"
  "CMakeFiles/bench_ablation_differential.dir/bench_ablation_differential.cc.o.d"
  "bench_ablation_differential"
  "bench_ablation_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
