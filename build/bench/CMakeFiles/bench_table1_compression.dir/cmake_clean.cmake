file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_compression.dir/bench_table1_compression.cc.o"
  "CMakeFiles/bench_table1_compression.dir/bench_table1_compression.cc.o.d"
  "bench_table1_compression"
  "bench_table1_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
