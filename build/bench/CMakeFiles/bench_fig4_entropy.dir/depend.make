# Empty dependencies file for bench_fig4_entropy.
# This may be replaced when dependencies are built.
