# Empty dependencies file for bench_fig11_simple_tasks.
# This may be replaced when dependencies are built.
