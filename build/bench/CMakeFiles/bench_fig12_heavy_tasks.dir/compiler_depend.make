# Empty compiler generated dependencies file for bench_fig12_heavy_tasks.
# This may be replaced when dependencies are built.
