# Empty dependencies file for bench_ablation_codec_pipeline.
# This may be replaced when dependencies are built.
