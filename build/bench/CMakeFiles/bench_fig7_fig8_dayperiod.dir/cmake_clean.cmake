file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fig8_dayperiod.dir/bench_fig7_fig8_dayperiod.cc.o"
  "CMakeFiles/bench_fig7_fig8_dayperiod.dir/bench_fig7_fig8_dayperiod.cc.o.d"
  "bench_fig7_fig8_dayperiod"
  "bench_fig7_fig8_dayperiod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fig8_dayperiod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
