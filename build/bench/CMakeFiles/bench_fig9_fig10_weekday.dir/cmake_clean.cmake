file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_fig10_weekday.dir/bench_fig9_fig10_weekday.cc.o"
  "CMakeFiles/bench_fig9_fig10_weekday.dir/bench_fig9_fig10_weekday.cc.o.d"
  "bench_fig9_fig10_weekday"
  "bench_fig9_fig10_weekday.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_fig10_weekday.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
