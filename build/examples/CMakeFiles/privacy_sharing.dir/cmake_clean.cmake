file(REMOVE_RECURSE
  "CMakeFiles/privacy_sharing.dir/privacy_sharing.cpp.o"
  "CMakeFiles/privacy_sharing.dir/privacy_sharing.cpp.o.d"
  "privacy_sharing"
  "privacy_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
