# Empty compiler generated dependencies file for privacy_sharing.
# This may be replaced when dependencies are built.
