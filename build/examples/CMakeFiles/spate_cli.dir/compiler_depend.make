# Empty compiler generated dependencies file for spate_cli.
# This may be replaced when dependencies are built.
