file(REMOVE_RECURSE
  "CMakeFiles/spate_cli.dir/spate_cli.cpp.o"
  "CMakeFiles/spate_cli.dir/spate_cli.cpp.o.d"
  "spate_cli"
  "spate_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spate_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
