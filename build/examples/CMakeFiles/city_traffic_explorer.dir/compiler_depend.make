# Empty compiler generated dependencies file for city_traffic_explorer.
# This may be replaced when dependencies are built.
