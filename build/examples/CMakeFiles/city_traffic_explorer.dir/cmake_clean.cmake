file(REMOVE_RECURSE
  "CMakeFiles/city_traffic_explorer.dir/city_traffic_explorer.cpp.o"
  "CMakeFiles/city_traffic_explorer.dir/city_traffic_explorer.cpp.o.d"
  "city_traffic_explorer"
  "city_traffic_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_traffic_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
