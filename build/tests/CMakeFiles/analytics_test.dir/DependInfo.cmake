
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytics/kmeans_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics/kmeans_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics/kmeans_test.cc.o.d"
  "/root/repo/tests/analytics/regression_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics/regression_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics/regression_test.cc.o.d"
  "/root/repo/tests/analytics/sketch_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics/sketch_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics/sketch_test.cc.o.d"
  "/root/repo/tests/analytics/stats_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics/stats_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics/stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analytics/CMakeFiles/spate_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/telco/CMakeFiles/spate_telco.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spate_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
