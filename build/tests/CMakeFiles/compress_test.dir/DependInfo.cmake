
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compress/codec_test.cc" "tests/CMakeFiles/compress_test.dir/compress/codec_test.cc.o" "gcc" "tests/CMakeFiles/compress_test.dir/compress/codec_test.cc.o.d"
  "/root/repo/tests/compress/dictionary_test.cc" "tests/CMakeFiles/compress_test.dir/compress/dictionary_test.cc.o" "gcc" "tests/CMakeFiles/compress_test.dir/compress/dictionary_test.cc.o.d"
  "/root/repo/tests/compress/fuzz_test.cc" "tests/CMakeFiles/compress_test.dir/compress/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/compress_test.dir/compress/fuzz_test.cc.o.d"
  "/root/repo/tests/compress/huffman_test.cc" "tests/CMakeFiles/compress_test.dir/compress/huffman_test.cc.o" "gcc" "tests/CMakeFiles/compress_test.dir/compress/huffman_test.cc.o.d"
  "/root/repo/tests/compress/lz77_test.cc" "tests/CMakeFiles/compress_test.dir/compress/lz77_test.cc.o" "gcc" "tests/CMakeFiles/compress_test.dir/compress/lz77_test.cc.o.d"
  "/root/repo/tests/compress/lz_slots_test.cc" "tests/CMakeFiles/compress_test.dir/compress/lz_slots_test.cc.o" "gcc" "tests/CMakeFiles/compress_test.dir/compress/lz_slots_test.cc.o.d"
  "/root/repo/tests/compress/range_coder_test.cc" "tests/CMakeFiles/compress_test.dir/compress/range_coder_test.cc.o" "gcc" "tests/CMakeFiles/compress_test.dir/compress/range_coder_test.cc.o.d"
  "/root/repo/tests/compress/tans_test.cc" "tests/CMakeFiles/compress_test.dir/compress/tans_test.cc.o" "gcc" "tests/CMakeFiles/compress_test.dir/compress/tans_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/spate_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spate_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
