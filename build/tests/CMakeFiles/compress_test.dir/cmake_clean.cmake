file(REMOVE_RECURSE
  "CMakeFiles/compress_test.dir/compress/codec_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/codec_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/dictionary_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/dictionary_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/fuzz_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/fuzz_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/huffman_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/huffman_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/lz77_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/lz77_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/lz_slots_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/lz_slots_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/range_coder_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/range_coder_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/tans_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/tans_test.cc.o.d"
  "compress_test"
  "compress_test.pdb"
  "compress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
