file(REMOVE_RECURSE
  "CMakeFiles/telco_test.dir/telco/assembler_test.cc.o"
  "CMakeFiles/telco_test.dir/telco/assembler_test.cc.o.d"
  "CMakeFiles/telco_test.dir/telco/entropy_test.cc.o"
  "CMakeFiles/telco_test.dir/telco/entropy_test.cc.o.d"
  "CMakeFiles/telco_test.dir/telco/generator_test.cc.o"
  "CMakeFiles/telco_test.dir/telco/generator_test.cc.o.d"
  "CMakeFiles/telco_test.dir/telco/schema_test.cc.o"
  "CMakeFiles/telco_test.dir/telco/schema_test.cc.o.d"
  "CMakeFiles/telco_test.dir/telco/snapshot_test.cc.o"
  "CMakeFiles/telco_test.dir/telco/snapshot_test.cc.o.d"
  "telco_test"
  "telco_test.pdb"
  "telco_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
