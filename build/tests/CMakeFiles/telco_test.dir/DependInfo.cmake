
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/telco/assembler_test.cc" "tests/CMakeFiles/telco_test.dir/telco/assembler_test.cc.o" "gcc" "tests/CMakeFiles/telco_test.dir/telco/assembler_test.cc.o.d"
  "/root/repo/tests/telco/entropy_test.cc" "tests/CMakeFiles/telco_test.dir/telco/entropy_test.cc.o" "gcc" "tests/CMakeFiles/telco_test.dir/telco/entropy_test.cc.o.d"
  "/root/repo/tests/telco/generator_test.cc" "tests/CMakeFiles/telco_test.dir/telco/generator_test.cc.o" "gcc" "tests/CMakeFiles/telco_test.dir/telco/generator_test.cc.o.d"
  "/root/repo/tests/telco/schema_test.cc" "tests/CMakeFiles/telco_test.dir/telco/schema_test.cc.o" "gcc" "tests/CMakeFiles/telco_test.dir/telco/schema_test.cc.o.d"
  "/root/repo/tests/telco/snapshot_test.cc" "tests/CMakeFiles/telco_test.dir/telco/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/telco_test.dir/telco/snapshot_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telco/CMakeFiles/spate_telco.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spate_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
