file(REMOVE_RECURSE
  "CMakeFiles/spate_baseline.dir/raw_framework.cc.o"
  "CMakeFiles/spate_baseline.dir/raw_framework.cc.o.d"
  "CMakeFiles/spate_baseline.dir/shahed_framework.cc.o"
  "CMakeFiles/spate_baseline.dir/shahed_framework.cc.o.d"
  "libspate_baseline.a"
  "libspate_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spate_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
