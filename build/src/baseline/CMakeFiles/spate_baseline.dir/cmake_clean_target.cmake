file(REMOVE_RECURSE
  "libspate_baseline.a"
)
