# Empty compiler generated dependencies file for spate_baseline.
# This may be replaced when dependencies are built.
