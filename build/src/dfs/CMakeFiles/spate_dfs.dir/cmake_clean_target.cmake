file(REMOVE_RECURSE
  "libspate_dfs.a"
)
