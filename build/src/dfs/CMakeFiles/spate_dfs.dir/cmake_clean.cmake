file(REMOVE_RECURSE
  "CMakeFiles/spate_dfs.dir/dfs.cc.o"
  "CMakeFiles/spate_dfs.dir/dfs.cc.o.d"
  "libspate_dfs.a"
  "libspate_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spate_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
