# Empty dependencies file for spate_dfs.
# This may be replaced when dependencies are built.
