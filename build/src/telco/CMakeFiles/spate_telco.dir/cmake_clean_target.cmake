file(REMOVE_RECURSE
  "libspate_telco.a"
)
