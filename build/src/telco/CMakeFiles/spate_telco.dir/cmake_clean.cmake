file(REMOVE_RECURSE
  "CMakeFiles/spate_telco.dir/assembler.cc.o"
  "CMakeFiles/spate_telco.dir/assembler.cc.o.d"
  "CMakeFiles/spate_telco.dir/entropy.cc.o"
  "CMakeFiles/spate_telco.dir/entropy.cc.o.d"
  "CMakeFiles/spate_telco.dir/generator.cc.o"
  "CMakeFiles/spate_telco.dir/generator.cc.o.d"
  "CMakeFiles/spate_telco.dir/partition.cc.o"
  "CMakeFiles/spate_telco.dir/partition.cc.o.d"
  "CMakeFiles/spate_telco.dir/schema.cc.o"
  "CMakeFiles/spate_telco.dir/schema.cc.o.d"
  "CMakeFiles/spate_telco.dir/snapshot.cc.o"
  "CMakeFiles/spate_telco.dir/snapshot.cc.o.d"
  "libspate_telco.a"
  "libspate_telco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spate_telco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
