# Empty dependencies file for spate_telco.
# This may be replaced when dependencies are built.
