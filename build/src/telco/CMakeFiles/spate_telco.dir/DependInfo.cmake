
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telco/assembler.cc" "src/telco/CMakeFiles/spate_telco.dir/assembler.cc.o" "gcc" "src/telco/CMakeFiles/spate_telco.dir/assembler.cc.o.d"
  "/root/repo/src/telco/entropy.cc" "src/telco/CMakeFiles/spate_telco.dir/entropy.cc.o" "gcc" "src/telco/CMakeFiles/spate_telco.dir/entropy.cc.o.d"
  "/root/repo/src/telco/generator.cc" "src/telco/CMakeFiles/spate_telco.dir/generator.cc.o" "gcc" "src/telco/CMakeFiles/spate_telco.dir/generator.cc.o.d"
  "/root/repo/src/telco/partition.cc" "src/telco/CMakeFiles/spate_telco.dir/partition.cc.o" "gcc" "src/telco/CMakeFiles/spate_telco.dir/partition.cc.o.d"
  "/root/repo/src/telco/schema.cc" "src/telco/CMakeFiles/spate_telco.dir/schema.cc.o" "gcc" "src/telco/CMakeFiles/spate_telco.dir/schema.cc.o.d"
  "/root/repo/src/telco/snapshot.cc" "src/telco/CMakeFiles/spate_telco.dir/snapshot.cc.o" "gcc" "src/telco/CMakeFiles/spate_telco.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spate_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
