# Empty dependencies file for spate_analytics.
# This may be replaced when dependencies are built.
