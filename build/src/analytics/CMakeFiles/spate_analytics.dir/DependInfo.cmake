
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/features.cc" "src/analytics/CMakeFiles/spate_analytics.dir/features.cc.o" "gcc" "src/analytics/CMakeFiles/spate_analytics.dir/features.cc.o.d"
  "/root/repo/src/analytics/heavy_hitters.cc" "src/analytics/CMakeFiles/spate_analytics.dir/heavy_hitters.cc.o" "gcc" "src/analytics/CMakeFiles/spate_analytics.dir/heavy_hitters.cc.o.d"
  "/root/repo/src/analytics/histogram.cc" "src/analytics/CMakeFiles/spate_analytics.dir/histogram.cc.o" "gcc" "src/analytics/CMakeFiles/spate_analytics.dir/histogram.cc.o.d"
  "/root/repo/src/analytics/kmeans.cc" "src/analytics/CMakeFiles/spate_analytics.dir/kmeans.cc.o" "gcc" "src/analytics/CMakeFiles/spate_analytics.dir/kmeans.cc.o.d"
  "/root/repo/src/analytics/regression.cc" "src/analytics/CMakeFiles/spate_analytics.dir/regression.cc.o" "gcc" "src/analytics/CMakeFiles/spate_analytics.dir/regression.cc.o.d"
  "/root/repo/src/analytics/stats.cc" "src/analytics/CMakeFiles/spate_analytics.dir/stats.cc.o" "gcc" "src/analytics/CMakeFiles/spate_analytics.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spate_common.dir/DependInfo.cmake"
  "/root/repo/build/src/telco/CMakeFiles/spate_telco.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
