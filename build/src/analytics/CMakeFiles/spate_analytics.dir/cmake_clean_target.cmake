file(REMOVE_RECURSE
  "libspate_analytics.a"
)
