file(REMOVE_RECURSE
  "CMakeFiles/spate_analytics.dir/features.cc.o"
  "CMakeFiles/spate_analytics.dir/features.cc.o.d"
  "CMakeFiles/spate_analytics.dir/heavy_hitters.cc.o"
  "CMakeFiles/spate_analytics.dir/heavy_hitters.cc.o.d"
  "CMakeFiles/spate_analytics.dir/histogram.cc.o"
  "CMakeFiles/spate_analytics.dir/histogram.cc.o.d"
  "CMakeFiles/spate_analytics.dir/kmeans.cc.o"
  "CMakeFiles/spate_analytics.dir/kmeans.cc.o.d"
  "CMakeFiles/spate_analytics.dir/regression.cc.o"
  "CMakeFiles/spate_analytics.dir/regression.cc.o.d"
  "CMakeFiles/spate_analytics.dir/stats.cc.o"
  "CMakeFiles/spate_analytics.dir/stats.cc.o.d"
  "libspate_analytics.a"
  "libspate_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spate_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
