file(REMOVE_RECURSE
  "CMakeFiles/spate_sql.dir/executor.cc.o"
  "CMakeFiles/spate_sql.dir/executor.cc.o.d"
  "CMakeFiles/spate_sql.dir/parser.cc.o"
  "CMakeFiles/spate_sql.dir/parser.cc.o.d"
  "libspate_sql.a"
  "libspate_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spate_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
