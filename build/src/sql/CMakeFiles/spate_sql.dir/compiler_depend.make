# Empty compiler generated dependencies file for spate_sql.
# This may be replaced when dependencies are built.
