file(REMOVE_RECURSE
  "libspate_sql.a"
)
