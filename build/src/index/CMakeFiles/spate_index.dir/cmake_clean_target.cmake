file(REMOVE_RECURSE
  "libspate_index.a"
)
