file(REMOVE_RECURSE
  "CMakeFiles/spate_index.dir/highlights.cc.o"
  "CMakeFiles/spate_index.dir/highlights.cc.o.d"
  "CMakeFiles/spate_index.dir/leaf_spatial.cc.o"
  "CMakeFiles/spate_index.dir/leaf_spatial.cc.o.d"
  "CMakeFiles/spate_index.dir/spatial.cc.o"
  "CMakeFiles/spate_index.dir/spatial.cc.o.d"
  "CMakeFiles/spate_index.dir/temporal_index.cc.o"
  "CMakeFiles/spate_index.dir/temporal_index.cc.o.d"
  "libspate_index.a"
  "libspate_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spate_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
