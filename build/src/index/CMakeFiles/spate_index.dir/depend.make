# Empty dependencies file for spate_index.
# This may be replaced when dependencies are built.
