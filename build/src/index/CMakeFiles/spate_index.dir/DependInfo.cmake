
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/highlights.cc" "src/index/CMakeFiles/spate_index.dir/highlights.cc.o" "gcc" "src/index/CMakeFiles/spate_index.dir/highlights.cc.o.d"
  "/root/repo/src/index/leaf_spatial.cc" "src/index/CMakeFiles/spate_index.dir/leaf_spatial.cc.o" "gcc" "src/index/CMakeFiles/spate_index.dir/leaf_spatial.cc.o.d"
  "/root/repo/src/index/spatial.cc" "src/index/CMakeFiles/spate_index.dir/spatial.cc.o" "gcc" "src/index/CMakeFiles/spate_index.dir/spatial.cc.o.d"
  "/root/repo/src/index/temporal_index.cc" "src/index/CMakeFiles/spate_index.dir/temporal_index.cc.o" "gcc" "src/index/CMakeFiles/spate_index.dir/temporal_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spate_common.dir/DependInfo.cmake"
  "/root/repo/build/src/telco/CMakeFiles/spate_telco.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
