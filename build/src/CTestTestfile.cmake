# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("compress")
subdirs("telco")
subdirs("dfs")
subdirs("index")
subdirs("query")
subdirs("sql")
subdirs("analytics")
subdirs("privacy")
subdirs("core")
subdirs("baseline")
