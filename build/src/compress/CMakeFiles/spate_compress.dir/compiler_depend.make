# Empty compiler generated dependencies file for spate_compress.
# This may be replaced when dependencies are built.
