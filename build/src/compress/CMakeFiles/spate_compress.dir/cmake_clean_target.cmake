file(REMOVE_RECURSE
  "libspate_compress.a"
)
