file(REMOVE_RECURSE
  "CMakeFiles/spate_compress.dir/codec.cc.o"
  "CMakeFiles/spate_compress.dir/codec.cc.o.d"
  "CMakeFiles/spate_compress.dir/deflate_codec.cc.o"
  "CMakeFiles/spate_compress.dir/deflate_codec.cc.o.d"
  "CMakeFiles/spate_compress.dir/fast_lz_codec.cc.o"
  "CMakeFiles/spate_compress.dir/fast_lz_codec.cc.o.d"
  "CMakeFiles/spate_compress.dir/huffman.cc.o"
  "CMakeFiles/spate_compress.dir/huffman.cc.o.d"
  "CMakeFiles/spate_compress.dir/lz77.cc.o"
  "CMakeFiles/spate_compress.dir/lz77.cc.o.d"
  "CMakeFiles/spate_compress.dir/lzma_lite_codec.cc.o"
  "CMakeFiles/spate_compress.dir/lzma_lite_codec.cc.o.d"
  "CMakeFiles/spate_compress.dir/null_codec.cc.o"
  "CMakeFiles/spate_compress.dir/null_codec.cc.o.d"
  "CMakeFiles/spate_compress.dir/tans.cc.o"
  "CMakeFiles/spate_compress.dir/tans.cc.o.d"
  "CMakeFiles/spate_compress.dir/tans_codec.cc.o"
  "CMakeFiles/spate_compress.dir/tans_codec.cc.o.d"
  "libspate_compress.a"
  "libspate_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spate_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
