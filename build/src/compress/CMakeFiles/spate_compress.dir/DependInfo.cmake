
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/codec.cc" "src/compress/CMakeFiles/spate_compress.dir/codec.cc.o" "gcc" "src/compress/CMakeFiles/spate_compress.dir/codec.cc.o.d"
  "/root/repo/src/compress/deflate_codec.cc" "src/compress/CMakeFiles/spate_compress.dir/deflate_codec.cc.o" "gcc" "src/compress/CMakeFiles/spate_compress.dir/deflate_codec.cc.o.d"
  "/root/repo/src/compress/fast_lz_codec.cc" "src/compress/CMakeFiles/spate_compress.dir/fast_lz_codec.cc.o" "gcc" "src/compress/CMakeFiles/spate_compress.dir/fast_lz_codec.cc.o.d"
  "/root/repo/src/compress/huffman.cc" "src/compress/CMakeFiles/spate_compress.dir/huffman.cc.o" "gcc" "src/compress/CMakeFiles/spate_compress.dir/huffman.cc.o.d"
  "/root/repo/src/compress/lz77.cc" "src/compress/CMakeFiles/spate_compress.dir/lz77.cc.o" "gcc" "src/compress/CMakeFiles/spate_compress.dir/lz77.cc.o.d"
  "/root/repo/src/compress/lzma_lite_codec.cc" "src/compress/CMakeFiles/spate_compress.dir/lzma_lite_codec.cc.o" "gcc" "src/compress/CMakeFiles/spate_compress.dir/lzma_lite_codec.cc.o.d"
  "/root/repo/src/compress/null_codec.cc" "src/compress/CMakeFiles/spate_compress.dir/null_codec.cc.o" "gcc" "src/compress/CMakeFiles/spate_compress.dir/null_codec.cc.o.d"
  "/root/repo/src/compress/tans.cc" "src/compress/CMakeFiles/spate_compress.dir/tans.cc.o" "gcc" "src/compress/CMakeFiles/spate_compress.dir/tans.cc.o.d"
  "/root/repo/src/compress/tans_codec.cc" "src/compress/CMakeFiles/spate_compress.dir/tans_codec.cc.o" "gcc" "src/compress/CMakeFiles/spate_compress.dir/tans_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spate_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
