# Empty compiler generated dependencies file for spate_query.
# This may be replaced when dependencies are built.
