file(REMOVE_RECURSE
  "libspate_query.a"
)
