file(REMOVE_RECURSE
  "CMakeFiles/spate_query.dir/result_cache.cc.o"
  "CMakeFiles/spate_query.dir/result_cache.cc.o.d"
  "CMakeFiles/spate_query.dir/tasks.cc.o"
  "CMakeFiles/spate_query.dir/tasks.cc.o.d"
  "CMakeFiles/spate_query.dir/timeseries.cc.o"
  "CMakeFiles/spate_query.dir/timeseries.cc.o.d"
  "libspate_query.a"
  "libspate_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spate_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
