file(REMOVE_RECURSE
  "libspate_privacy.a"
)
