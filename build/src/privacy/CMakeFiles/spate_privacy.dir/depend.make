# Empty dependencies file for spate_privacy.
# This may be replaced when dependencies are built.
