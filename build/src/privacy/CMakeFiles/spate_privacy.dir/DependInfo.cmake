
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/k_anonymity.cc" "src/privacy/CMakeFiles/spate_privacy.dir/k_anonymity.cc.o" "gcc" "src/privacy/CMakeFiles/spate_privacy.dir/k_anonymity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spate_common.dir/DependInfo.cmake"
  "/root/repo/build/src/telco/CMakeFiles/spate_telco.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
