file(REMOVE_RECURSE
  "CMakeFiles/spate_privacy.dir/k_anonymity.cc.o"
  "CMakeFiles/spate_privacy.dir/k_anonymity.cc.o.d"
  "libspate_privacy.a"
  "libspate_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spate_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
