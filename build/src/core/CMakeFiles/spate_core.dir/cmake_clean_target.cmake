file(REMOVE_RECURSE
  "libspate_core.a"
)
