file(REMOVE_RECURSE
  "CMakeFiles/spate_core.dir/framework.cc.o"
  "CMakeFiles/spate_core.dir/framework.cc.o.d"
  "CMakeFiles/spate_core.dir/spate_framework.cc.o"
  "CMakeFiles/spate_core.dir/spate_framework.cc.o.d"
  "libspate_core.a"
  "libspate_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spate_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
