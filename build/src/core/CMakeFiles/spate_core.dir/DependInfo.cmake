
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/framework.cc" "src/core/CMakeFiles/spate_core.dir/framework.cc.o" "gcc" "src/core/CMakeFiles/spate_core.dir/framework.cc.o.d"
  "/root/repo/src/core/spate_framework.cc" "src/core/CMakeFiles/spate_core.dir/spate_framework.cc.o" "gcc" "src/core/CMakeFiles/spate_core.dir/spate_framework.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spate_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/spate_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/spate_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/spate_index.dir/DependInfo.cmake"
  "/root/repo/build/src/telco/CMakeFiles/spate_telco.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
