# Empty compiler generated dependencies file for spate_core.
# This may be replaced when dependencies are built.
