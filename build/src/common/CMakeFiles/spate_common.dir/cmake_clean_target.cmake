file(REMOVE_RECURSE
  "libspate_common.a"
)
