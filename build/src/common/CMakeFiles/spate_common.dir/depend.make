# Empty dependencies file for spate_common.
# This may be replaced when dependencies are built.
