file(REMOVE_RECURSE
  "CMakeFiles/spate_common.dir/clock.cc.o"
  "CMakeFiles/spate_common.dir/clock.cc.o.d"
  "CMakeFiles/spate_common.dir/crc32.cc.o"
  "CMakeFiles/spate_common.dir/crc32.cc.o.d"
  "CMakeFiles/spate_common.dir/status.cc.o"
  "CMakeFiles/spate_common.dir/status.cc.o.d"
  "CMakeFiles/spate_common.dir/strings.cc.o"
  "CMakeFiles/spate_common.dir/strings.cc.o.d"
  "CMakeFiles/spate_common.dir/thread_pool.cc.o"
  "CMakeFiles/spate_common.dir/thread_pool.cc.o.d"
  "libspate_common.a"
  "libspate_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spate_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
