// Emergency response: find a developing network incident with highlights,
// localize it spatially, and cluster cell-health fingerprints.
//
// The paper motivates SPATE with smart-city emergency response: when an
// incident degrades service, operators need to spot the affected cells
// fast, over recent full-resolution data, while month-old data may already
// have decayed to summaries. This example shows both sides: (1) highlight
// extraction pinpoints the anomalous cells in the last hours, (2) k-means
// over NMS feature rows separates healthy from degraded cells, and (3) a
// decayed historical window still answers at summary resolution.
//
// Build & run:  ./build/examples/emergency_response

#include <cstdio>
#include <map>

#include "analytics/features.h"
#include "analytics/kmeans.h"
#include "common/thread_pool.h"
#include "core/spate_framework.h"
#include "telco/generator.h"
#include "telco/schema.h"

using namespace spate;  // NOLINT — example brevity

int main() {
  TraceConfig trace;
  trace.days = 3;
  TraceGenerator generator(trace);

  // Decay aggressively so this demo exercises the decayed path: only the
  // last 36 hours stay at full resolution.
  SpateOptions options;
  options.decay.full_resolution_seconds = 36 * 3600;
  SpateFramework spate(options, generator.cells());
  printf("Ingesting 3 days with a 36-hour full-resolution window...\n");
  for (Timestamp epoch : generator.EpochStarts()) {
    if (!spate.Ingest(generator.GenerateSnapshot(epoch)).ok()) return 1;
  }
  printf("Leaves decayed: %zu of %zu\n\n", spate.index().num_decayed(),
         spate.index().num_leaves());

  // ---- 1. Highlights over the last 6 hours (full resolution). ----
  const Timestamp now = trace.start + 3 * 86400;
  ExplorationQuery recent;
  recent.window_begin = now - 6 * 3600;
  recent.window_end = now;
  auto result = spate.Execute(recent);
  if (!result.ok()) return 1;
  printf("Last 6 hours (exact=%s): %zu highlights\n",
         result->exact ? "yes" : "no", result->highlights.size());
  int shown = 0;
  for (const Highlight& h : result->highlights) {
    if (h.cell_id.empty()) continue;  // spatial incidents only
    const CellInfo* cell = spate.cells().Find(h.cell_id);
    printf("  ALERT cell %-6s (%.0fm, %.0fm): %s spiked to %s (z=%.1f)\n",
           h.cell_id.c_str(), cell ? cell->x : -1, cell ? cell->y : -1,
           h.attribute.c_str(), h.value.c_str(), h.frequency);
    if (++shown >= 5) break;
  }

  // ---- 2. Cluster cell-health fingerprints over the recent window. ----
  Matrix nms_rows;
  if (!spate
           .ScanWindow(recent.window_begin, recent.window_end,
                       [&](const Snapshot& s) {
                         AppendSnapshotFeatures(s, nullptr, &nms_rows);
                       })
           .ok()) {
    return 1;
  }
  ThreadPool pool(4);
  KMeansOptions kmeans_options;
  kmeans_options.k = 3;
  auto clusters = KMeans(nms_rows, kmeans_options, &pool);
  if (!clusters.ok()) {
    fprintf(stderr, "kmeans failed: %s\n",
            clusters.status().ToString().c_str());
    return 1;
  }
  printf("\nCell-health clusters over %zu NMS reports (k=3):\n",
         nms_rows.size());
  for (int c = 0; c < 3; ++c) {
    size_t members = 0;
    for (int a : clusters->assignments) members += (a == c);
    const auto& center = clusters->centroids[c];
    printf("  cluster %d: %6zu reports | drops=%.1f attempts=%.0f rssi=%.0f\n",
           c, members, center[0], center[1], center[4]);
  }

  // ---- 3. Historical comparison against a decayed window. ----
  ExplorationQuery history;
  history.window_begin = trace.start;
  history.window_end = trace.start + 6 * 3600;
  auto old_result = spate.Execute(history);
  if (!old_result.ok()) return 1;
  printf("\nSame 6-hour window, 3 days ago (raw data decayed):\n");
  printf("  exact=%s, served from the %s node\n",
         old_result->exact ? "yes" : "no",
         std::string(IndexLevelName(old_result->served_from)).c_str());
  printf("  summary still answers: %llu calls, %llu NMS reports, "
         "%.0f drop calls\n",
         static_cast<unsigned long long>(old_result->summary.cdr_rows()),
         static_cast<unsigned long long>(old_result->summary.nms_rows()),
         old_result->summary.TotalMetric(Metric::kDropCalls).sum);
  return 0;
}
