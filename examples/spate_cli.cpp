// spate_cli: an interactive shell over a SPATE instance — the stand-in for
// the paper's SPATE-SQL (Apache Hue) interface.
//
// Loads a configurable synthetic trace, then reads commands from stdin:
//
//   sql <statement>        run a SPATE-SQL statement (tables CDR/NMS/CELL)
//                          through the cost-based planner and a session
//                          result cache; prefix the statement with EXPLAIN
//                          to also print the chosen plan
//   explain <statement>    shorthand for `sql EXPLAIN <statement>`: print
//                          the plan tree and predicted-vs-actual decoded
//                          bytes, then the result
//   explore <from> <to>    exploration query Q(a,b,w) with compact
//                          timestamps, e.g. `explore 20160118 20160119`
//   highlights <from> <to> only the highlight list for the window
//   stats                  storage/index statistics
//   decay <days>           run the decaying module, keeping <days> days
//   fsck                   deep cross-layer integrity check (see
//                          src/check/fsck.h for the invariant catalog)
//   corrupt <seed>         flip one replica byte (then try `fsck`)
//   repair                 namenode repair scan (re-replicate/rewrite)
//   locks                  lock-order graph + per-mutex contention stats
//                          observed so far (spate::lockdep; populated in
//                          instrumented builds — -DSPATE_LOCKDEP=ON or
//                          Debug)
//   serve-stats [n]        drive n demo requests (default 60) through a
//                          sharded QueryServer over the same trace, then
//                          print per-tenant admission counters and
//                          per-shard breaker/queue/fallback state (the
//                          serving tier, src/serve/)
//   scan-stats [n]         drive n overlapping exploration queries
//                          (default 24) through a shared ScanScheduler on
//                          4 client threads, then print the cooperative
//                          shared-scan counters and the decoded-fragment
//                          cache counters (src/query/scan_scheduler.h,
//                          src/core/fragment_cache.h)
//   help / quit
//
// Non-interactive use:  echo "sql SELECT COUNT(*) FROM CDR" | spate_cli
//
// Subcommands (no trace is loaded):
//
//   spate_cli verify-blob <file>   run one stored-format blob (a corpus
//                                  file or fuzz crash artifact) through
//                                  the envelope/chunked/columnar decoders
//                                  and print each Status — the offline
//                                  reproducer for fuzz/ findings (see
//                                  DESIGN.md "Adversarial bytes")
//
//   spate_cli failpoints           list every registered error-injection
//                                  site with its passage/trip counters
//   spate_cli failpoints --trip <id>
//                                  arm <id> fail-once (kIOError), run the
//                                  walker's canonical workload, print every
//                                  surfaced Status and the post-run fsck
//                                  verdict — the interactive twin of
//                                  tests/common/failpoint_walk_test.cc (see
//                                  DESIGN.md "Error-handling contract")
//
// Flags: --days N (default 2), --cells N (default 120).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analytics/heavy_hitters.h"
#include "analytics/histogram.h"
#include "check/fsck.h"
#include "common/clock.h"
#include "common/failpoint.h"
#include "common/lockdep.h"
#include "common/strings.h"
#include "compress/chunked.h"
#include "compress/codec.h"
#include "compress/columnar.h"
#include "core/spate_framework.h"
#include "query/result_cache.h"
#include "query/scan_scheduler.h"
#include "serve/server.h"
#include "sql/explain.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "telco/generator.h"
#include "telco/schema.h"

using namespace spate;  // NOLINT — example brevity

namespace {

void PrintSqlResult(const SqlResult& result) {
  for (const std::string& column : result.columns) {
    printf("%-16s", column.c_str());
  }
  printf("\n");
  size_t shown = 0;
  for (const auto& row : result.rows) {
    for (const std::string& value : row) printf("%-16s", value.c_str());
    printf("\n");
    if (++shown >= 25 && result.rows.size() > 30) {
      printf("... (%zu more rows)\n", result.rows.size() - shown);
      break;
    }
  }
  printf("(%zu row%s)\n", result.rows.size(),
         result.rows.size() == 1 ? "" : "s");
}

bool ParseWindow(std::istringstream& in, Timestamp* begin, Timestamp* end) {
  std::string from, to;
  if (!(in >> from >> to)) return false;
  *begin = ParseCompact(from);
  *end = ParseCompact(to);
  return *begin >= 0 && *end >= 0 && *begin < *end;
}

/// `serve-stats [n]`: drives a small deterministic mixed-tenant workload
/// through a lazily built 4-shard QueryServer over the same trace, then
/// prints the serving tier's two counter tables. Three tenants exercise
/// the admission paths: "interactive" runs within quota on a workable
/// deadline, "batch" runs the same load on a deadline too tight for exact
/// answers (degrades, and its repeated deadline failures can trip shard
/// breakers), and "greedy" carries a tiny token bucket (sheds).
void RunServeStats(const TraceGenerator& generator, int requests) {
  static std::unique_ptr<QueryServer> server;
  if (server == nullptr) {
    fprintf(stderr, "building the 4-shard serving tier (one-time)... ");
    ServeOptions options;
    options.num_shards = 4;
    options.default_deadline_seconds = 0.05;
    server = std::make_unique<QueryServer>(options, generator.cells());
    for (Timestamp epoch : generator.EpochStarts()) {
      if (!server->Ingest(generator.GenerateSnapshot(epoch)).ok()) {
        fprintf(stderr, "shard ingest failed\n");
        server.reset();
        return;
      }
    }
    TenantQuota tiny;
    tiny.tokens_per_second = 0.1;
    tiny.burst = 3;
    server->SetQuota("greedy", tiny);
    fprintf(stderr, "done.\n");
  }

  const TraceConfig& trace = generator.config();
  const char* tenants[] = {"interactive", "batch", "greedy"};
  for (int i = 0; i < requests; ++i) {
    ServeRequest request;
    request.tenant = tenants[i % 3];
    // "batch" gets a deadline no exact decode can meet: its answers come
    // from the highlight ladder and its shards record deadline failures.
    request.deadline_seconds = request.tenant == "batch" ? 1e-4 : 0.05;
    request.query.window_begin = trace.start + (i % 20) * 3600;
    request.query.window_end = request.query.window_begin + 3600;
    server->Query(request);
  }

  const ServerStats stats = server->Stats();
  printf("%-13s %9s %9s %6s %9s %6s %9s %6s\n", "tenant", "admitted",
         "in-flight", "ok", "degraded", "shed", "deadline", "error");
  for (const auto& [tenant, t] : stats.tenants) {
    printf("%-13s %9llu %9llu %6llu %9llu %6llu %9llu %6llu\n",
           tenant.c_str(), static_cast<unsigned long long>(t.admitted),
           static_cast<unsigned long long>(t.in_flight),
           static_cast<unsigned long long>(t.ok),
           static_cast<unsigned long long>(t.degraded),
           static_cast<unsigned long long>(t.shed),
           static_cast<unsigned long long>(t.deadline_exceeded),
           static_cast<unsigned long long>(t.errors));
  }
  printf("\n%5s %-9s %6s %8s %9s %9s %8s %9s %12s\n", "shard", "breaker",
         "trips", "shorted", "q-reject", "executed", "retries", "fallback",
         "cache h/m");
  for (size_t i = 0; i < stats.shards.size(); ++i) {
    const ShardStats& s = stats.shards[i];
    printf("%5zu %-9s %6llu %8llu %9llu %9llu %8llu %9llu %6llu/%llu\n", i,
           std::string(CircuitBreaker::StateName(s.breaker_state)).c_str(),
           static_cast<unsigned long long>(s.breaker_trips),
           static_cast<unsigned long long>(s.short_circuits),
           static_cast<unsigned long long>(s.queue_rejections),
           static_cast<unsigned long long>(s.executed),
           static_cast<unsigned long long>(s.retries),
           static_cast<unsigned long long>(s.fallbacks),
           static_cast<unsigned long long>(s.cache.hits),
           static_cast<unsigned long long>(s.cache.misses));
  }
}

/// `scan-stats [n]`: drives n overlapping 8-epoch exploration windows
/// through one ScanScheduler from 4 concurrent client threads (the
/// cooperative shared-scan path, src/query/scan_scheduler.h), then prints
/// the scheduler's pass/join/detach counters and the decoded-fragment
/// cache's hit/eviction/residency counters. The scheduler is built once
/// and kept, so repeated invocations show counters accumulating and the
/// second run answering mostly from the warm fragment cache.
void RunScanStats(SpateFramework* spate, const TraceGenerator& generator,
                  int queries) {
  static std::unique_ptr<ScanScheduler> scheduler;
  if (scheduler == nullptr) scheduler = std::make_unique<ScanScheduler>(spate);

  const TraceConfig& trace = generator.config();
  const int total_epochs = trace.days * (86400 / kEpochSeconds);
  const int window_epochs = 8;
  const int positions = std::max(1, total_epochs - window_epochs);
  constexpr int kThreads = 4;
  std::vector<std::thread> clients;
  std::vector<int> errors(kThreads, 0);
  clients.reserve(kThreads);
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      // Client c asks windows offset by half a window from its neighbour:
      // a 50%-overlap chain, so concurrent clients merge into shared passes
      // and successive rounds rescan warm fragments.
      for (int i = c; i < queries; i += kThreads) {
        ExplorationQuery query;
        query.window_begin =
            trace.start +
            ((i * (window_epochs / 2)) % positions) * kEpochSeconds;
        query.window_end =
            query.window_begin + window_epochs * kEpochSeconds;
        if (!scheduler->Execute(query).ok()) ++errors[static_cast<size_t>(c)];
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int e : errors) {
    if (e != 0) printf("warning: %d scan-stats queries failed\n", e);
  }

  const ScanSchedulerStats s = scheduler->stats();
  printf("shared scans: %llu passes started, %llu joins (%llu mid-pass), "
         "%llu detached\n",
         static_cast<unsigned long long>(s.passes_started),
         static_cast<unsigned long long>(s.shared_pass_joins),
         static_cast<unsigned long long>(s.mid_pass_attaches),
         static_cast<unsigned long long>(s.waiters_detached));
  printf("              %llu solo, %llu summary-only, %llu exclusive "
         "sections, %llu leaf folds\n",
         static_cast<unsigned long long>(s.solo_executes),
         static_cast<unsigned long long>(s.summary_answers),
         static_cast<unsigned long long>(s.exclusive_runs),
         static_cast<unsigned long long>(s.leaves_folded));
  printf("              %s decoded, %s saved by the fragment cache "
         "(%llu hits)\n",
         HumanBytes(s.bytes_decoded).c_str(),
         HumanBytes(s.bytes_decoded_saved).c_str(),
         static_cast<unsigned long long>(s.fragment_hits));
  if (const FragmentCache* cache = spate->fragment_cache()) {
    const FragmentCacheStats f = cache->stats();
    printf("fragment cache: %llu hits / %llu misses, %llu insertions, "
           "%llu evictions\n",
           static_cast<unsigned long long>(f.fragment_hits),
           static_cast<unsigned long long>(f.misses),
           static_cast<unsigned long long>(f.insertions),
           static_cast<unsigned long long>(f.evictions));
    printf("                %s resident in %llu fragments, generation %llu, "
           "%s of decode work saved\n",
           HumanBytes(f.resident_bytes).c_str(),
           static_cast<unsigned long long>(f.resident_entries),
           static_cast<unsigned long long>(f.generation),
           HumanBytes(f.bytes_decoded_saved).c_str());
  } else {
    printf("fragment cache: disabled (fragment_cache_bytes = 0)\n");
  }
}

}  // namespace

/// `spate_cli verify-blob <file>`: run one stored-format blob through the
/// exact Status paths the fuzz/ harnesses exercise — envelope decode,
/// chunked/columnar framing + decode — and print every verdict. This is
/// how a fuzz finding (a corpus file or libFuzzer crash artifact) is
/// reproduced outside the fuzzing engine: same decoders, same bounds,
/// human-readable statuses. Exits 0 when every applicable decoder returns
/// OK, 1 when any reports corruption (reporting IS the success mode for a
/// crash artifact), 2 on usage/IO errors.
int VerifyBlobCommand(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fprintf(stderr, "verify-blob: cannot read %s\n", path);
    return 2;
  }
  const std::string blob((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  printf("verify-blob: %s (%zu bytes)\n", path, blob.size());
  bool all_ok = true;
  auto report = [&all_ok](const char* what, const Status& status) {
    printf("  %-22s %s\n", what, status.ok() ? "OK" : status.ToString().c_str());
    all_ok = all_ok && status.ok();
  };

  if (IsColumnarBlob(blob)) {
    printf("  format: columnar container (0xCD)\n");
    report("framing", VerifyColumnarFraming(blob));
    ColumnarReader reader;
    const Status open = ColumnarReader::Open(blob, &reader);
    report("directory", open);
    if (open.ok()) {
      for (const ColumnarReader::ChunkRef& chunk : reader.chunks()) {
        std::string decoded;
        report(("chunk '" + std::string(chunk.name) + "'").c_str(),
               ColumnarReader::Decode(chunk, &decoded));
      }
    }
  } else if (IsChunkedBlob(blob)) {
    printf("  format: chunked container (0xCF)\n");
    report("framing", VerifyChunkedFraming(blob));
    std::string text;
    report("decode", ChunkedDecompress(blob, nullptr, &text));
  } else {
    const Codec* codec =
        blob.empty() ? nullptr
                     : CodecRegistry::GetById(static_cast<uint8_t>(blob[0]));
    if (codec == nullptr) {
      printf("  format: unknown leading byte — not a SPATE blob\n");
      report("decode", Status::Corruption("unknown codec id / magic"));
    } else {
      printf("  format: %s envelope\n", std::string(codec->Name()).c_str());
      std::string text;
      report("decode", codec->Decompress(blob, &text));
    }
  }
  return all_ok ? 0 : 1;
}

/// `spate_cli failpoints --trip <id>`: the interactive twin of the failpoint
/// walker (tests/common/failpoint_walk_test.cc). Arms `id` fail-once with
/// kIOError, drives the same canonical ingest -> query -> recover -> serve
/// workload, prints every Status that surfaces at an API boundary, then
/// disarms, repairs, and reports the fsck/recover verdict. Exits 0 when the
/// site tripped and the store came back clean, 1 otherwise, 2 on usage
/// errors or an uninstrumented binary.
int TripFailpointCommand(const char* id) {
  {
    const auto info = failpoint::Get(id);
    if (!info.ok()) {
      fprintf(stderr, "failpoints: %s (run `spate_cli failpoints` for the "
              "registered ids)\n", info.status().ToString().c_str());
      return 2;
    }
  }
  if (!failpoint::Enabled()) {
    fprintf(stderr,
            "failpoints: this binary was built without the site macros "
            "(Release with SPATE_FAILPOINTS=OFF), so '%s' can never trip. "
            "Rebuild with -DSPATE_FAILPOINTS=ON or CMAKE_BUILD_TYPE=Debug.\n",
            id);
    return 2;
  }

  // Same trace and stores as the walker: a row store with chunking forced, a
  // columnar store, and a 2-shard serving tier — together they reach all
  // registered sites.
  TraceConfig config;
  config.days = 3;
  config.num_cells = 24;
  config.num_antennas = 8;
  config.num_users = 60;
  config.cdr_base_rate = 6;
  config.nms_per_cell = 0.5;
  const TraceGenerator gen(config);
  const std::vector<Timestamp> epochs = gen.EpochStarts();

  SpateOptions row_options;
  row_options.parallelism.ingest_chunk_bytes = 2048;
  auto row_store = std::make_unique<SpateFramework>(row_options, gen.cells());
  SpateOptions col_options;
  col_options.leaf_layout = LeafLayout::kColumnar;
  auto col_store = std::make_unique<SpateFramework>(col_options, gen.cells());
  ServeOptions serve_options;
  serve_options.num_shards = 2;
  serve_options.quota.tokens_per_second = 0;
  serve_options.quota.max_in_flight = 0;
  serve_options.default_deadline_seconds = 30.0;
  QueryServer server(serve_options, gen.cells());

  failpoint::ResetCounters();
  failpoint::Trigger trigger;  // fail-once, kIOError
  if (!failpoint::Arm(id, trigger).ok()) return 2;
  printf("failpoints: armed %s fail-once (IOError); running the canonical "
         "workload\n", id);

  int surfaced = 0;
  auto report = [&surfaced](const char* stage, const Status& status) {
    if (status.ok()) return;
    ++surfaced;
    printf("  surfaced at %-8s %s\n", stage, status.ToString().c_str());
  };

  for (size_t i = 0; i < epochs.size(); ++i) {
    if (static_cast<int>(i) % kEpochsPerDay >= 3) continue;
    report("ingest", row_store->Ingest(gen.GenerateSnapshot(epochs[i])));
  }
  for (size_t i = 0; i < 3; ++i) {
    report("ingest", col_store->Ingest(gen.GenerateSnapshot(epochs[i])));
  }

  ExplorationQuery query;
  query.window_begin = config.start + 2 * 86400;
  query.window_end = config.start + 2 * 86400 + 3 * kEpochSeconds;
  report("query", row_store->Execute(query).status());
  ExplorationQuery day0 = query;
  day0.window_begin = config.start;
  day0.window_end = config.start + 3 * kEpochSeconds;
  report("query", col_store->Execute(day0).status());
  size_t rows = 0;
  report("scan", row_store->ScanWindow(config.start,
                                       config.start + 3 * kEpochSeconds,
                                       [&](const Snapshot& s) {
                                         rows += s.size();
                                       }));

  const std::string sql =
      "SELECT cell_id, SUM(duration) FROM CDR WHERE ts >= '" +
      FormatCompact(config.start) + "' AND ts < '" +
      FormatCompact(config.start + 3 * kEpochSeconds) + "' GROUP BY cell_id";
  report("sql", ExecutePlannedSql(*row_store, sql).status());

  auto dfs = row_store->shared_dfs();
  for (uint64_t seed : {7u, 11u}) {
    report("corrupt", dfs->CorruptRandomReplica(seed).status());
  }
  const RepairReport mid_repair = dfs->RepairScan();
  if (mid_repair.unavailable_blocks > 0) {
    printf("  repair scan left %llu block(s) unavailable (re-replication "
           "absorbed the failure)\n",
           static_cast<unsigned long long>(mid_repair.unavailable_blocks));
  }
  report("recover", SpateFramework::Recover(row_options, dfs).status());

  DecayPolicy policy;
  policy.full_resolution_seconds = 86400;
  (void)row_store->RunDecay(policy, config.start + 3 * 86400);

  for (size_t i = 0; i < 2; ++i) {
    report("serve", server.Ingest(gen.GenerateSnapshot(epochs[i])));
  }
  for (int i = 0; i < 2; ++i) {
    ServeRequest request;
    request.query.window_begin = epochs[0];
    request.query.window_end = epochs[0] + 2 * kEpochSeconds;
    const ServeResponse response = server.Query(request);
    report("serve", response.status);
    if (response.outcome == ServeOutcome::kDegraded ||
        response.outcome == ServeOutcome::kShed ||
        response.shards_fallback > 0) {
      printf("  serving tier degraded (outcome absorbed the failure)\n");
    }
  }

  const auto info = failpoint::Get(id);
  const uint64_t passages = info.ok() ? info->passages : 0;
  const uint64_t trips = info.ok() ? info->trips : 0;
  printf("site %s: %llu passage(s), %llu trip(s), %d status(es) surfaced\n",
         id, static_cast<unsigned long long>(passages),
         static_cast<unsigned long long>(trips), surfaced);

  failpoint::DisarmAll();
  (void)dfs->RepairScan();
  const check::FsckReport row_fsck = row_store->Fsck();
  const check::FsckReport col_fsck = col_store->Fsck();
  const auto recovered = SpateFramework::Recover(row_options, dfs);
  printf("post-run: fsck row=%s columnar=%s recover=%s\n",
         row_fsck.clean() ? "clean" : "DIRTY",
         col_fsck.clean() ? "clean" : "DIRTY",
         recovered.ok() ? "OK" : recovered.status().ToString().c_str());
  if (!row_fsck.clean()) printf("%s", row_fsck.ToString().c_str());
  if (!col_fsck.clean()) printf("%s", col_fsck.ToString().c_str());

  const bool verdict =
      trips >= 1 && row_fsck.clean() && col_fsck.clean() && recovered.ok();
  printf("%s\n", verdict ? "verdict: tripped, propagated, store consistent"
                         : "verdict: FAILED (see above)");
  return verdict ? 0 : 1;
}

/// `spate_cli failpoints`: list the registry. Works in every build — the
/// table is always compiled in — but the counters only move (and --trip only
/// injects) when the site macros are instrumented.
int FailpointsCommand(int argc, char** argv) {
  if (argc == 3 || (argc == 4 && strcmp(argv[2], "--trip") != 0)) {
    fprintf(stderr, "usage: spate_cli failpoints [--trip <id>]\n");
    return 2;
  }
  if (argc == 4) return TripFailpointCommand(argv[3]);

  const auto all = failpoint::AllFailpoints();
  printf("%zu registered failpoints (%s)\n", all.size(),
         failpoint::Enabled()
             ? "instrumented build: sites can trip"
             : "uninstrumented build: sites compiled out, counters stay 0");
  for (const auto& info : all) {
    printf("  %-28s %8llu passages %6llu trips%s\n",
           std::string(info.id).c_str(),
           static_cast<unsigned long long>(info.passages),
           static_cast<unsigned long long>(info.trips),
           info.armed ? "  [armed]" : "");
    printf("    %s\n", std::string(info.description).c_str());
  }
  printf("docs/FAILPOINTS.md is the reviewed manifest; tools/failscan.py "
         "--check keeps it honest.\n");
  return 0;
}

int main(int argc, char** argv) {
  if (argc >= 2 && strcmp(argv[1], "verify-blob") == 0) {
    if (argc != 3) {
      fprintf(stderr, "usage: spate_cli verify-blob <file>\n");
      return 2;
    }
    return VerifyBlobCommand(argv[2]);
  }
  if (argc >= 2 && strcmp(argv[1], "failpoints") == 0) {
    return FailpointsCommand(argc, argv);
  }

  TraceConfig trace;
  trace.days = 2;
  trace.num_cells = 120;
  trace.num_antennas = 40;
  for (int i = 1; i + 1 < argc; i += 2) {
    int64_t v = 0;
    if (strcmp(argv[i], "--days") == 0 && ParseInt64(argv[i + 1], &v)) {
      trace.days = static_cast<int>(v);
    } else if (strcmp(argv[i], "--cells") == 0 && ParseInt64(argv[i + 1], &v)) {
      trace.num_cells = static_cast<int>(v);
    }
  }

  TraceGenerator generator(trace);
  SpateOptions options;
  // A modest decoded-fragment cache so `scan-stats` (and repeated scans in
  // general) demonstrate the cooperative-scan path with warm fragments.
  options.fragment_cache_bytes = 64u << 20;
  SpateFramework spate(options, generator.cells());
  fprintf(stderr, "Loading %d day(s) of synthetic telco traffic... ",
          trace.days);
  for (Timestamp epoch : generator.EpochStarts()) {
    if (!spate.Ingest(generator.GenerateSnapshot(epoch)).ok()) return 1;
  }
  fprintf(stderr, "done. Storage: %s. Type 'help'.\n",
          HumanBytes(spate.StorageBytes()).c_str());

  CachedExplorer explorer(&spate);
  // Session cache for SQL: planned statements probe it (`CacheServe`) and
  // completed scans feed it, so a repeated statement decodes nothing.
  ResultCache sql_cache;
  std::string line;
  while (true) {
    fprintf(stderr, "spate> ");
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;

    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      printf("commands:\n"
             "  sql <statement>         e.g. sql SELECT COUNT(*) FROM CDR\n"
             "  explain <statement>     plan tree + predicted/actual bytes\n"
             "  explore <from> <to>     e.g. explore 201601181200 20160119\n"
             "  highlights <from> <to>\n"
             "  top callers|cells|devices <from> <to> [k]\n"
             "  hist rssi|throughput|duration <from> <to>\n"
             "  stats | decay <days> | quit\n"
             "  fsck | corrupt <seed> | repair | locks\n"
             "  serve-stats [n]         serving-tier tenant/shard counters\n"
             "  scan-stats [n]          shared-scan + fragment-cache "
             "counters\n");
      continue;
    }
    if (command == "top") {
      std::string what;
      ExplorationQuery window;
      if (!(in >> what) ||
          !ParseWindow(in, &window.window_begin, &window.window_end)) {
        printf("usage: top callers|cells|devices <from> <to> [k]\n");
        continue;
      }
      int64_t k = 10;
      std::string k_text;
      if (in >> k_text) ParseInt64(k_text, &k);
      HeavyHitters hh(256);
      Status scan = spate.ScanWindow(
          window.window_begin, window.window_end, [&](const Snapshot& s) {
            for (const Record& row : s.cdr) {
              if (what == "callers") {
                hh.Add(FieldAsString(row, kCdrCaller));
              } else if (what == "devices") {
                hh.Add(FieldAsString(row, kCdrImei));
              } else {
                hh.Add(FieldAsString(row, kCdrCellId));
              }
            }
          });
      if (!scan.ok()) {
        printf("error: %s\n", scan.ToString().c_str());
        continue;
      }
      for (const auto& entry : hh.Top(static_cast<size_t>(k))) {
        printf("  %-20s %8llu calls (+/- %llu)\n", entry.key.c_str(),
               static_cast<unsigned long long>(entry.count),
               static_cast<unsigned long long>(entry.error));
      }
      continue;
    }
    if (command == "hist") {
      std::string what;
      ExplorationQuery window;
      if (!(in >> what) ||
          !ParseWindow(in, &window.window_begin, &window.window_end)) {
        printf("usage: hist rssi|throughput|duration <from> <to>\n");
        continue;
      }
      Histogram hist(what == "rssi" ? -110 : 0,
                     what == "rssi" ? -60 : (what == "throughput" ? 50 : 600),
                     20);
      Status scan = spate.ScanWindow(
          window.window_begin, window.window_end, [&](const Snapshot& s) {
            if (what == "duration") {
              for (const Record& row : s.cdr) {
                hist.Add(static_cast<double>(FieldAsInt(row, kCdrDuration)));
              }
            } else {
              const int col = what == "rssi" ? kNmsRssi : kNmsThroughput;
              for (const Record& row : s.nms) {
                hist.Add(FieldAsDouble(row, col));
              }
            }
          });
      if (!scan.ok()) {
        printf("error: %s\n", scan.ToString().c_str());
        continue;
      }
      printf("%s", hist.ToAscii().c_str());
      printf("p50=%.1f p95=%.1f mean=%.1f (n=%llu, %llu outside range)\n",
             hist.Quantile(0.5), hist.Quantile(0.95), hist.ApproxMean(),
             static_cast<unsigned long long>(hist.total()),
             static_cast<unsigned long long>(hist.underflow() +
                                             hist.overflow()));
      continue;
    }
    if (command == "sql" || command == "explain") {
      std::string statement_text;
      std::getline(in, statement_text);
      auto parsed = ParseSql(statement_text);
      if (!parsed.ok()) {
        printf("error: %s\n", parsed.status().ToString().c_str());
        continue;
      }
      if (command == "explain" || parsed->explain) {
        auto explained = ExplainSelect(spate, *parsed, &sql_cache);
        if (!explained.ok()) {
          printf("error: %s\n", explained.status().ToString().c_str());
          continue;
        }
        printf("%s\n", explained->text.c_str());
        PrintSqlResult(explained->result);
        continue;
      }
      auto plan = PlanSelect(spate, *parsed, &sql_cache);
      if (!plan.ok()) {
        printf("error: %s\n", plan.status().ToString().c_str());
        continue;
      }
      auto result = ExecutePlan(spate, *plan, &sql_cache);
      if (!result.ok()) {
        printf("error: %s\n", result.status().ToString().c_str());
      } else {
        PrintSqlResult(*result);
      }
      continue;
    }
    if (command == "explore" || command == "highlights") {
      ExplorationQuery query;
      if (!ParseWindow(in, &query.window_begin, &query.window_end)) {
        printf("usage: %s <from> <to>  (compact timestamps)\n",
               command.c_str());
        continue;
      }
      auto result = explorer.Execute(query);
      if (!result.ok()) {
        printf("error: %s\n", result.status().ToString().c_str());
        continue;
      }
      if (command == "explore") {
        printf("exact=%s served_from=%s cdr_rows=%zu nms_rows=%zu "
               "(cache: %llu hits / %llu misses)\n",
               result->exact ? "yes" : "no",
               std::string(IndexLevelName(result->served_from)).c_str(),
               result->cdr_rows.size(), result->nms_rows.size(),
               static_cast<unsigned long long>(explorer.cache().hits()),
               static_cast<unsigned long long>(explorer.cache().misses()));
        printf("calls=%llu nms_reports=%llu drop_calls=%.0f\n",
               static_cast<unsigned long long>(result->summary.cdr_rows()),
               static_cast<unsigned long long>(result->summary.nms_rows()),
               result->summary.TotalMetric(Metric::kDropCalls).sum);
      }
      for (const Highlight& h : result->highlights) {
        if (h.cell_id.empty()) {
          printf("  highlight [%s=%s] freq=%.3f%%\n", h.attribute.c_str(),
                 h.value.c_str(), 100 * h.frequency);
        } else {
          printf("  highlight [%s] cell=%s peak=%s z=%.1f\n",
                 h.attribute.c_str(), h.cell_id.c_str(), h.value.c_str(),
                 h.frequency);
        }
      }
      continue;
    }
    if (command == "stats") {
      printf("storage: %s logical (%s physical, replication %d)\n",
             HumanBytes(spate.dfs().TotalLogicalBytes()).c_str(),
             HumanBytes(spate.dfs().TotalPhysicalBytes()).c_str(),
             spate.dfs().options().replication);
      printf("index: %zu leaves (%zu decayed), newest epoch %s\n",
             spate.index().num_leaves(), spate.index().num_decayed(),
             FormatIso(spate.index().newest_epoch()).c_str());
      const ResultCache::CacheStats cache_stats = explorer.cache().stats();
      printf("cache: %llu hits / %llu misses, %s of decode work saved\n",
             static_cast<unsigned long long>(cache_stats.hits),
             static_cast<unsigned long long>(cache_stats.misses),
             HumanBytes(cache_stats.bytes_decoded_saved).c_str());
      printf("last scan: %s decoded, %zu leaves skipped spatially\n",
             HumanBytes(spate.last_scan_stats().bytes_decoded).c_str(),
             spate.last_scan_stats().leaves_skipped_spatial);
      continue;
    }
    if (command == "decay") {
      int64_t days = 0;
      std::string days_text;
      if (!(in >> days_text) || !ParseInt64(days_text, &days) || days < 0) {
        printf("usage: decay <days-to-keep>\n");
        continue;
      }
      DecayPolicy policy;
      policy.full_resolution_seconds = days * 86400;
      const Timestamp now = spate.index().newest_epoch() + kEpochSeconds;
      const size_t evicted = spate.RunDecay(policy, now);
      printf("evicted %zu leaves; storage now %s\n", evicted,
             HumanBytes(spate.StorageBytes()).c_str());
      continue;
    }
    if (command == "fsck") {
      const check::FsckReport report = spate.Fsck();
      printf("%s", report.ToString().c_str());
      continue;
    }
    if (command == "corrupt") {
      int64_t seed = 0;
      std::string seed_text;
      if (!(in >> seed_text) || !ParseInt64(seed_text, &seed)) {
        printf("usage: corrupt <seed>\n");
        continue;
      }
      auto event = spate.dfs().CorruptRandomReplica(
          static_cast<uint64_t>(seed));
      if (!event.ok()) {
        printf("error: %s\n", event.status().ToString().c_str());
        continue;
      }
      printf("flipped byte %llu of a replica of block %llu on datanode %d "
             "(run 'fsck' to find it, 'repair' to heal it)\n",
             static_cast<unsigned long long>(event->byte_offset),
             static_cast<unsigned long long>(event->block_id),
             event->datanode);
      continue;
    }
    if (command == "locks") {
      printf("%s", lockdep::Dump().c_str());
      continue;
    }
    if (command == "serve-stats") {
      int64_t requests = 60;
      std::string count_text;
      if (in >> count_text && !ParseInt64(count_text, &requests)) {
        printf("usage: serve-stats [requests]\n");
        continue;
      }
      RunServeStats(generator, static_cast<int>(requests));
      continue;
    }
    if (command == "scan-stats") {
      int64_t queries = 24;
      std::string count_text;
      if (in >> count_text && !ParseInt64(count_text, &queries)) {
        printf("usage: scan-stats [queries]\n");
        continue;
      }
      RunScanStats(&spate, generator, static_cast<int>(queries));
      continue;
    }
    if (command == "repair") {
      const RepairReport report = spate.dfs().RepairScan();
      printf("scanned %llu blocks: repaired %llu replicas, re-replicated "
             "%llu, %llu unrecoverable\n",
             static_cast<unsigned long long>(report.blocks_scanned),
             static_cast<unsigned long long>(report.replicas_repaired),
             static_cast<unsigned long long>(report.replicas_rereplicated),
             static_cast<unsigned long long>(report.unrecoverable_blocks));
      continue;
    }
    printf("unknown command '%s' (try 'help')\n", command.c_str());
  }
  return 0;
}
