// Quickstart: generate a day of telco traffic, ingest it into SPATE, and
// run a spatiotemporal exploration query Q(a, b, w).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/strings.h"
#include "core/spate_framework.h"
#include "telco/generator.h"
#include "telco/schema.h"

using namespace spate;  // NOLINT — example brevity

int main() {
  // 1. A synthetic telco trace: one Monday of 30-minute snapshots.
  TraceConfig trace;
  trace.days = 1;
  TraceGenerator generator(trace);

  // 2. SPATE with the default storage codec (deflate, the GZIP design
  //    point) and a one-year full-resolution decay window.
  SpateOptions options;
  SpateFramework spate(options, generator.cells());

  printf("Ingesting %d snapshots...\n", kEpochsPerDay);
  for (Timestamp epoch : generator.EpochStarts()) {
    const Snapshot snapshot = generator.GenerateSnapshot(epoch);
    Status status = spate.Ingest(snapshot);
    if (!status.ok()) {
      fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  printf("Storage used: %s (logical, incl. index)\n",
         HumanBytes(spate.StorageBytes()).c_str());

  // 3. Explore: attribute selection a, bounding box b, time window w.
  ExplorationQuery query;
  query.attributes = {"upflux", "downflux"};
  const BoundingBox extent = spate.cells().extent();
  query.has_box = true;
  query.box = BoundingBox{extent.min_x, extent.min_y,
                          (extent.min_x + extent.max_x) / 2,
                          (extent.min_y + extent.max_y) / 2};
  query.window_begin = trace.start + 8 * 3600;   // 08:00
  query.window_end = trace.start + 12 * 3600;    // 12:00

  auto result = spate.Execute(query);
  if (!result.ok()) {
    fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  printf("\nQ(a={upflux,downflux}, b=SW-quadrant, w=08:00-12:00)\n");
  printf("  exact=%s, served from %s level\n",
         result->exact ? "yes" : "no",
         std::string(IndexLevelName(result->served_from)).c_str());
  printf("  matching CDR rows: %zu, NMS rows: %zu\n",
         result->cdr_rows.size(), result->nms_rows.size());

  // 4. The highlights the index materialized for this window.
  printf("\nHighlights (rare events + peaking cells):\n");
  for (const Highlight& h : result->highlights) {
    if (h.cell_id.empty()) {
      printf("  [%s] rare value '%s' (%.2f%% of rows)\n", h.attribute.c_str(),
             h.value.c_str(), 100 * h.frequency);
    } else {
      printf("  [%s] cell %s peaks at %s (z-score %.1f)\n",
             h.attribute.c_str(), h.cell_id.c_str(), h.value.c_str(),
             h.frequency);
    }
  }

  // 5. Aggregate drill-down without touching raw data: the whole day from
  //    the index's materialized summaries.
  auto day = spate.AggregateWindow(trace.start, trace.start + 86400);
  if (day.ok()) {
    const MetricAggregate drops = day->TotalMetric(Metric::kDropCalls);
    printf("\nWhole-day aggregate (from index, no decompression):\n");
    printf("  CDR rows: %llu, NMS rows: %llu, drop calls: %.0f\n",
           static_cast<unsigned long long>(day->cdr_rows()),
           static_cast<unsigned long long>(day->nms_rows()), drops.sum);
  }
  return 0;
}
