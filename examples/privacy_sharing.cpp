// Privacy-aware data sharing: export a k-anonymized CDR slice to a
// smart-city partner (the paper's T5 scenario with the ARX stand-in).
//
// A municipality requests the morning-commute call records for congestion
// analysis. The telco must not leak who called whom, so the export pipeline
// (1) pulls the window from the compressed store, (2) k-anonymizes the
// quasi-identifiers with full-domain generalization + suppression, and
// (3) verifies the k-anonymity invariant before handing the rows over.
//
// Build & run:  ./build/examples/privacy_sharing

#include <cstdio>

#include "core/spate_framework.h"
#include "privacy/k_anonymity.h"
#include "query/tasks.h"
#include "telco/generator.h"
#include "telco/schema.h"

using namespace spate;  // NOLINT — example brevity

int main() {
  TraceConfig trace;
  trace.days = 1;
  TraceGenerator generator(trace);
  SpateOptions options;
  SpateFramework spate(options, generator.cells());
  for (Timestamp epoch : generator.EpochStarts()) {
    if (!spate.Ingest(generator.GenerateSnapshot(epoch)).ok()) return 1;
  }

  const Timestamp begin = trace.start + 7 * 3600;   // 07:00
  const Timestamp end = trace.start + 10 * 3600;    // 10:00

  printf("Exporting morning commute window (07:00-10:00) at k = 2, 5, 20:\n");
  printf("  %-4s %-10s %-12s %-22s\n", "k", "rows kept", "suppressed",
         "generalization levels");
  for (int k : {2, 5, 20}) {
    auto result = TaskPrivacy(spate, begin, end, k);
    if (!result.ok()) {
      fprintf(stderr, "anonymization failed: %s\n",
              result.status().ToString().c_str());
      return 1;
    }
    std::string levels;
    for (int l : result->levels) {
      levels += std::to_string(l);
      levels += " ";
    }
    printf("  %-4d %-10zu %-12zu %-22s\n", k, result->rows.size(),
           result->suppressed, levels.c_str());

    // Verify the invariant the partner contract requires.
    AnonymizationConfig config;
    config.quasi_identifiers = {
        {kCdrCaller, GeneralizationKind::kSuffixMask, 6},
        {kCdrCellId, GeneralizationKind::kSuffixMask, 4},
        {kCdrDuration, GeneralizationKind::kNumericBucket, 5},
    };
    if (!IsKAnonymous(result->rows, config.quasi_identifiers, k)) {
      fprintf(stderr, "INVARIANT VIOLATION at k=%d\n", k);
      return 1;
    }
  }

  // Show what the shared rows actually look like at k=5.
  auto sample = TaskPrivacy(spate, begin, end, 5);
  if (!sample.ok()) return 1;
  printf("\nSample of the k=5 export (caller, cell, type, duration):\n");
  for (size_t i = 0; i < sample->rows.size() && i < 5; ++i) {
    const Record& row = sample->rows[i];
    printf("  %-10s %-8s %-6s %-12s\n",
           FieldAsString(row, kCdrCaller).c_str(),
           FieldAsString(row, kCdrCellId).c_str(),
           FieldAsString(row, kCdrCallType).c_str(),
           FieldAsString(row, kCdrDuration).c_str());
  }
  printf("\nDirect identifiers (IMEI, callee) are dropped from the export.\n");
  return 0;
}
