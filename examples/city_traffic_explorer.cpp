// City traffic explorer: the SPATE-UI workflow from the command line.
//
// Mirrors the paper's data-exploration scenario: a city operator ingests a
// week of network traffic, then (1) renders a coverage/traffic heatmap per
// region, (2) drills down from week -> day -> 30-minute epochs over a chosen
// hotspot, and (3) "plays back" an evening rush hour window — all against
// the compressed SPATE structure, with SQL for the final report.
//
// Build & run:  ./build/examples/city_traffic_explorer

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/strings.h"
#include "core/spate_framework.h"
#include "query/timeseries.h"
#include "sql/executor.h"
#include "telco/generator.h"
#include "telco/schema.h"

using namespace spate;  // NOLINT — example brevity

namespace {

/// Renders one ASCII heatmap cell for a call volume share.
char HeatChar(double share) {
  static const char* kRamp = " .:-=+*#%@";
  int idx = static_cast<int>(share * 9.99);
  return kRamp[std::clamp(idx, 0, 9)];
}

}  // namespace

int main() {
  TraceConfig trace;
  trace.days = 7;
  trace.num_cells = 240;
  trace.num_antennas = 80;
  TraceGenerator generator(trace);

  SpateOptions options;
  SpateFramework spate(options, generator.cells());
  printf("Ingesting one week (%zu snapshots)...\n",
         generator.EpochStarts().size());
  for (Timestamp epoch : generator.EpochStarts()) {
    if (!spate.Ingest(generator.GenerateSnapshot(epoch)).ok()) return 1;
  }
  printf("Storage: %s\n\n", HumanBytes(spate.StorageBytes()).c_str());

  // ---- 1. Weekly traffic heatmap per 10x10 km tile (from the index). ----
  auto week = spate.AggregateWindow(trace.start, trace.start + 7 * 86400);
  if (!week.ok()) return 1;
  double tile_calls[8][8] = {};
  double max_tile = 0;
  for (const auto& [cell_id, stats] : week->per_cell()) {
    const CellInfo* cell = spate.cells().Find(cell_id);
    if (cell == nullptr) continue;
    const int gx = std::clamp(
        static_cast<int>(cell->x / trace.region_meters * 8), 0, 7);
    const int gy = std::clamp(
        static_cast<int>(cell->y / trace.region_meters * 8), 0, 7);
    tile_calls[gy][gx] += static_cast<double>(stats.cdr_rows);
    max_tile = std::max(max_tile, tile_calls[gy][gx]);
  }
  printf("Weekly call-volume heatmap (8x8 tiles over ~77x77 km):\n");
  for (int gy = 7; gy >= 0; --gy) {
    printf("  |");
    for (int gx = 0; gx < 8; ++gx) {
      printf("%c", HeatChar(max_tile > 0 ? tile_calls[gy][gx] / max_tile : 0));
    }
    printf("|\n");
  }

  // ---- 2. Drill-down: pick the busiest day, then its busiest epoch. ----
  Timestamp busiest_day = trace.start;
  uint64_t busiest_day_rows = 0;
  for (int d = 0; d < 7; ++d) {
    const Timestamp day = trace.start + d * 86400;
    auto agg = spate.AggregateWindow(day, day + 86400);
    if (agg.ok() && agg->cdr_rows() > busiest_day_rows) {
      busiest_day_rows = agg->cdr_rows();
      busiest_day = day;
    }
  }
  printf("\nBusiest day: %s (%llu calls). Drilling into epochs...\n",
         FormatIso(busiest_day).c_str(),
         static_cast<unsigned long long>(busiest_day_rows));
  Timestamp busiest_epoch = busiest_day;
  uint64_t busiest_epoch_rows = 0;
  for (int e = 0; e < kEpochsPerDay; ++e) {
    const Timestamp epoch = busiest_day + e * kEpochSeconds;
    auto agg = spate.AggregateWindow(epoch, epoch + kEpochSeconds);
    if (agg.ok() && agg->cdr_rows() > busiest_epoch_rows) {
      busiest_epoch_rows = agg->cdr_rows();
      busiest_epoch = epoch;
    }
  }
  printf("Peak epoch: %s with %llu calls\n",
         FormatIso(busiest_epoch).c_str(),
         static_cast<unsigned long long>(busiest_epoch_rows));

  // ---- 3. "Playback" of the evening rush (17:00-21:00, busiest day). ----
  printf("\nPlayback, evening rush (calls per 30-min frame):\n");
  auto playback = AggregateSeries(spate, busiest_day + 34 * kEpochSeconds,
                                  busiest_day + 42 * kEpochSeconds,
                                  kEpochSeconds);
  if (!playback.ok()) return 1;
  for (const SeriesPoint& frame : *playback) {
    const int bars = static_cast<int>(
        60.0 * static_cast<double>(frame.summary.cdr_rows()) /
        std::max<uint64_t>(1, busiest_epoch_rows));
    printf("  %s %-60.*s %llu\n", FormatCompact(frame.bucket_start).c_str(),
           bars,
           "############################################################",
           static_cast<unsigned long long>(frame.summary.cdr_rows()));
  }

  // ---- 4. SQL report: worst cells by drop count on the busiest day. ----
  const std::string day_key = FormatCompact(busiest_day).substr(0, 8);
  auto report = ExecuteSql(
      spate, "SELECT cell_id, SUM(drop_calls), AVG(rssi) FROM NMS WHERE ts = '" +
                 day_key + "' GROUP BY cell_id");
  if (!report.ok()) {
    fprintf(stderr, "sql failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<std::string>> rows = report->rows;
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return std::stod(a[1]) > std::stod(b[1]);
  });
  printf("\nTop-5 drop-call cells on %s (SPATE-SQL):\n", day_key.c_str());
  printf("  %-8s %12s %10s\n", "cell", "SUM(drops)", "AVG(rssi)");
  for (size_t i = 0; i < rows.size() && i < 5; ++i) {
    printf("  %-8s %12s %10s\n", rows[i][0].c_str(), rows[i][1].c_str(),
           rows[i][2].c_str());
  }
  return 0;
}
