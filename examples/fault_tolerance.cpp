// Fault tolerance: what SPATE does when its storage misbehaves.
//
// Walks the full failure story on a one-day trace: a datanode dies and
// reads fail over to surviving replicas; a flipped byte is caught by the
// per-block CRC; a leaf that loses every copy degrades to the covering
// highlight summary instead of erroring; RepairScan() re-replicates and
// repairs; and Recover() rebuilds the index over the damaged DFS.
//
// Build & run:  ./build/examples/fault_tolerance

#include <cstdio>

#include "common/strings.h"
#include "core/spate_framework.h"
#include "telco/generator.h"
#include "telco/schema.h"

using namespace spate;  // NOLINT — example brevity

namespace {

void PrintReadCounters(const IoStats& stats) {
  printf("    dead-node skips: %llu, CRC failures: %llu, failovers: %llu, "
         "unreadable blocks: %llu\n",
         static_cast<unsigned long long>(stats.dead_node_skips),
         static_cast<unsigned long long>(stats.crc_read_failures),
         static_cast<unsigned long long>(stats.read_failovers),
         static_cast<unsigned long long>(stats.failed_block_reads));
}

}  // namespace

int main() {
  TraceConfig trace;
  trace.days = 1;
  trace.num_cells = 120;
  trace.num_users = 600;
  TraceGenerator generator(trace);

  SpateOptions options;  // degraded_reads defaults to true
  SpateFramework spate(options, generator.cells());
  for (Timestamp epoch : generator.EpochStarts()) {
    if (!spate.Ingest(generator.GenerateSnapshot(epoch)).ok()) return 1;
  }
  DistributedFileSystem& dfs = spate.dfs();
  printf("Ingested %d snapshots, %s logical on %d datanodes "
         "(replication %d).\n",
         kEpochsPerDay, HumanBytes(spate.StorageBytes()).c_str(),
         dfs.options().num_datanodes, dfs.options().replication);

  ExplorationQuery noon;
  noon.window_begin = trace.start + 12 * 3600;
  noon.window_end = trace.start + 13 * 3600;

  // 1. A datanode dies: reads silently fail over to surviving replicas.
  printf("\n[1] Datanode 2 dies.\n");
  dfs.KillDatanode(2).ok();
  dfs.ResetStats();
  size_t scanned = 0;
  spate.ScanWindow(trace.start, trace.start + 86400,
                   [&](const Snapshot&) { ++scanned; })
      .ok();
  printf("    full-day scan still streams %zu/%d snapshots.\n", scanned,
         kEpochsPerDay);
  PrintReadCounters(dfs.stats());

  // 2. Silent corruption: two of one leaf's three copies rot on disk. The
  //    per-block CRC catches each bad copy and the read moves on; at least
  //    one of the two is on a live node, so the CRC check actually runs.
  const std::string rotten = dfs.ListFiles("/spate/data/")[10];
  dfs.CorruptReplica(rotten, 0, 0, 9).ok();
  dfs.CorruptReplica(rotten, 0, 1, 9).ok();
  printf("\n[2] Bit-flips in two replicas of %s.\n", rotten.c_str());
  dfs.ResetStats();
  scanned = 0;
  spate.ScanWindow(trace.start, trace.start + 86400,
                   [&](const Snapshot&) { ++scanned; })
      .ok();
  printf("    full-day scan still streams %zu/%d snapshots.\n", scanned,
         kEpochsPerDay);
  PrintReadCounters(dfs.stats());

  // 3. A leaf loses every replica: the query degrades to the covering
  //    day-level summary, exactly like a decayed leaf.
  const std::string doomed = dfs.ListFiles("/spate/data/")[24];  // ~noon
  for (int r = 0; r < dfs.options().replication; ++r) {
    dfs.CorruptReplica(doomed, 0, static_cast<size_t>(r), 1).ok();
  }
  printf("\n[3] Every replica of %s is corrupt.\n", doomed.c_str());
  auto result = spate.Execute(noon);
  if (!result.ok()) return 1;
  printf("    noon query: exact=%s, degraded=%s, served from %s summary "
         "(%llu calls aggregable), %zu epoch(s) skipped.\n",
         result->exact ? "yes" : "no", result->degraded ? "yes" : "no",
         std::string(IndexLevelName(result->served_from)).c_str(),
         static_cast<unsigned long long>(result->summary.cdr_rows()),
         result->skipped_epochs.size());

  // 4. The repair scan: re-replicates blocks that lost copies to the dead
  //    node and rewrites CRC-failing replicas from a good copy.
  printf("\n[4] RepairScan().\n");
  const RepairReport repair = dfs.RepairScan();
  printf("    scanned %llu blocks: repaired %llu replica(s) in place, "
         "re-replicated %llu (%s copied), %llu block(s) still unreadable.\n",
         static_cast<unsigned long long>(repair.blocks_scanned),
         static_cast<unsigned long long>(repair.replicas_repaired),
         static_cast<unsigned long long>(repair.replicas_rereplicated),
         HumanBytes(repair.bytes_copied).c_str(),
         static_cast<unsigned long long>(repair.unavailable_blocks +
                                         repair.unrecoverable_blocks));
  printf("    physical/logical bytes: %.2fx (target %d).\n",
         static_cast<double>(dfs.TotalPhysicalBytes()) /
             static_cast<double>(dfs.TotalLogicalBytes()),
         dfs.options().replication);

  // 5. Restart over the damaged DFS: Recover() keeps going past the one
  //    unrecoverable leaf, re-inserting it as a decayed placeholder.
  printf("\n[5] Recover() over the damaged DFS.\n");
  auto recovered = SpateFramework::Recover(options, spate.shared_dfs());
  if (!recovered.ok()) {
    fprintf(stderr, "recover failed: %s\n",
            recovered.status().ToString().c_str());
    return 1;
  }
  const RecoveryReport& report = (*recovered)->recovery_report();
  printf("    %zu leaves recovered, %zu skipped (decayed placeholders), "
         "%zu day summaries dropped.\n",
         report.leaves_recovered, report.leaves_skipped,
         report.day_summaries_skipped);
  result = (*recovered)->Execute(noon);
  if (!result.ok()) return 1;
  printf("    noon query after restart: exact=%s, %llu calls aggregable "
         "from the summary.\n",
         result->exact ? "yes" : "no",
         static_cast<unsigned long long>(result->summary.cdr_rows()));
  return 0;
}
